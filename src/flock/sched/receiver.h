// Receiver-side QP scheduling (§5.1): credit grants through per-lane control
// slots, renewal handling, and the periodic MAX_AQP redistribution that keeps
// the active-QP budget proportional to each sender's utilization. The
// client-side halves of the credit protocol (renewal requests, applying a
// written control slot) live here too so the whole grant loop reads in one
// place.
#ifndef FLOCK_FLOCK_SCHED_RECEIVER_H_
#define FLOCK_FLOCK_SCHED_RECEIVER_H_

#include <cstddef>
#include <vector>

#include "src/flock/config.h"
#include "src/flock/lane.h"
#include "src/sim/task.h"
#include "src/verbs/types.h"

namespace flock {
namespace internal {

// RDMA-writes the lane's control slot (cumulative grant + activation bit) to
// the client. `signaled` is the liveness-probe variant: a dead peer QP
// answers with an error completion, which quarantines the lane.
void WriteCtrlSlot(NodeEnv& env, ServerLane& lane, ServerStats& stats,
                   bool signaled = false);

// Appends a credit-renewal write-with-imm to `wrs` when the lane is below
// the renewal threshold (§5.1 + §7); piggybacked on the pump's doorbell.
void MaybeRenewCredits(const FlockConfig& config, ClientLane& lane,
                       verbs::SendWr* wrs, size_t* nwrs);

// Applies the server-written control slot to the client lane: new grants,
// activation flips, and (armed runs only) starved-lane renewal recovery.
void ApplyCtrlSlot(NodeEnv& env, ClientLane& lane);

// The receiver scheduler proc and its periodic redistribution sweep. The
// scratch vector persists across sweeps to keep the hot path allocation-free.
struct ReceiverSched {
  std::vector<ServerLane*> order_scratch;

  // Core-0 scheduler loop: drains renewal imms from the RCQ, grants credits,
  // polls the send CQ for this node's own completions, and redistributes the
  // AQP budget every qp_sched_interval.
  sim::Proc Run(NodeEnv& env, ServerState& server);

  // One §5.1 sweep: recompute per-sender utilization, reclaim dead senders,
  // and re-partition MAX_AQP proportionally (called by Run on its interval
  // and by the membership listener on a departure).
  void Redistribute(NodeEnv& env, ServerState& server);
};

}  // namespace internal
}  // namespace flock

#endif  // FLOCK_FLOCK_SCHED_RECEIVER_H_
