// Sender-side thread scheduling (§5.2, Algorithm 1): periodically re-assign
// application threads to the connection's active lanes, sorting by median
// request size (then request count) and packing by byte quota so lanes do not
// mix small- and large-payload threads (head-of-line avoidance).
//
// The sort/pack/stability primitives are pure functions over ThreadSchedStat
// vectors so unit tests drive them with synthetic stats, no simulator needed.
#ifndef FLOCK_FLOCK_SCHED_SENDER_H_
#define FLOCK_FLOCK_SCHED_SENDER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/flock/config.h"
#include "src/flock/lane.h"
#include "src/flock/thread.h"
#include "src/sim/task.h"

namespace flock {
namespace internal {

// One thread's scheduling inputs for an interval (Algorithm 1 line 0: the
// per-thread medians and interval deltas the sort and pack consume).
struct ThreadSchedStat {
  size_t tid;
  uint32_t median_size;
  uint64_t reqs;
  uint64_t bytes;
};

// Sorts per Algorithm 1 (median request size, then request count) — with the
// count quantized so run-to-run noise cannot flip the order. A stable
// ordering keeps thread→QP assignments (and therefore the sets of threads
// that coalesce together) intact across scheduling intervals; reshuffling
// them would break the request/response lockstep that drives coalescing.
// The tid tie-break makes the order strict, so plain sort is equivalent to
// a stable sort here and skips the temp-buffer allocation.
void SortByAlgorithm1(std::vector<ThreadSchedStat>& stats);

// Packs the (sorted) threads onto `active` lanes by byte quota: each lane
// takes threads until it holds total_bytes / |active| bytes, then the next
// lane fills (Algorithm 1 lines 1–5). Writes lane indices into
// (*desired_lane)[tid]; the vector must already span every tid in `stats`.
//
// With `segregate` set (the segmentation regime, DESIGN.md §16) a thread
// whose bytes would blow the quota of a non-empty lane opens the next lane
// instead of joining this one. The sort puts small threads first, so without
// this the one extent thread that crosses the quota boundary lands on the
// lane holding every metadata thread — and each of its chunk trains holds
// that lane's ring for a full train time, multiplying metadata tail latency
// by orders of magnitude. Off by default: the boundary thread placement
// (and thus the default-config trace) is unchanged when no workload mixes
// size classes that far apart.
void PackByByteQuota(const std::vector<ThreadSchedStat>& sorted,
                     const std::vector<uint32_t>& active, uint64_t total_bytes,
                     std::vector<uint32_t>* desired_lane,
                     bool segregate = false);

// Per-lane load aggregates reused across ticks (steady state stays
// allocation-free; see tests/alloc_test.cc).
struct LaneLoadScratch {
  std::vector<uint64_t> bytes;
  std::vector<uint32_t> min_size;
  std::vector<uint32_t> max_size;
};

// Stability check: true if the current assignment already satisfies the
// scheduling goals — every thread on an active lane, per-lane byte loads
// within 2x of the mean, and no lane mixing small- and large-payload
// threads. A healthy assignment is kept as-is: gratuitous migration would
// break the request/response lockstep among the threads sharing a QP, and
// with it the coalescing the whole design is after. `lane_active[i]` flags
// lane i active; `num_active` is how many lanes are (the quota divisor).
bool AssignmentHealthy(const std::vector<ThreadSchedStat>& stats,
                       const std::vector<uint32_t>& desired_lane,
                       const std::vector<uint8_t>& lane_active,
                       size_t num_active, uint64_t total_bytes,
                       LaneLoadScratch* scratch);

// The interval scheduler proc and its per-connection resort. Scratch vectors
// persist across ticks so the hot path allocates nothing.
struct SenderSched {
  std::vector<uint32_t> active_scratch;
  std::vector<ThreadSchedStat> stats_scratch;
  std::vector<uint8_t> lane_active_scratch;
  LaneLoadScratch load_scratch;

  // One tick for one connection: collect stats (this consumes the interval
  // deltas — call exactly once per tick), keep a healthy assignment, or
  // re-sort and re-pack per Algorithm 1. `tenant_bytes_cap` clamps the byte
  // total the pack divides (DESIGN.md §15): a quota-bound tenant is packed by
  // what it may still move this window, not by its offered load.
  void Reschedule(ClientConnState& conn,
                  std::vector<std::unique_ptr<FlockThread>>& threads,
                  const FlockConfig& config,
                  uint64_t tenant_bytes_cap = UINT64_MAX);

  // The client's interval loop: every thread_sched_interval, Reschedule each
  // connection in connect order.
  sim::Proc Run(NodeEnv& env, ClientState& client);
};

}  // namespace internal
}  // namespace flock

#endif  // FLOCK_FLOCK_SCHED_SENDER_H_
