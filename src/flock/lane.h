// Lane state and lifecycle: the client and server halves of one QP lane, the
// per-connection / per-role state containers the mechanism modules operate
// on, and the control-plane lifecycle (handshake build/wire, quarantine,
// reconnect, elastic add/retire, membership teardown).
//
// Layering (DESIGN.md §11): lane sits directly above the transport seam.
// Everything here is mechanism-module internal; the public API wrapping it
// lives in runtime.h.
#ifndef FLOCK_FLOCK_LANE_H_
#define FLOCK_FLOCK_LANE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/pool.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/ctrl/wire.h"
#include "src/flock/config.h"
#include "src/flock/ring.h"
#include "src/flock/segment.h"
#include "src/flock/thread.h"
#include "src/flock/transport.h"
#include "src/flock/wire.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/tenant/tenant.h"
#include "src/verbs/device.h"

namespace flock {

// Receiver-side (server-role) counters.
struct ServerStats {
  uint64_t qps_created = 0;   // server-half lanes built on a fresh QP
  uint64_t qps_recycled = 0;  // server-half lanes drawn from the shell pool
  uint64_t requests = 0;
  uint64_t messages = 0;
  uint64_t responses_sent = 0;
  uint64_t credit_renewals = 0;
  uint64_t redistributions = 0;
  uint64_t activations = 0;
  uint64_t deactivations = 0;
  uint64_t lane_failures = 0;  // server lanes quarantined
  uint64_t dead_senders = 0;   // senders fully reclaimed by Redistribute
  uint64_t responses_dropped = 0;  // responses lost to a dead lane
  uint64_t lane_reconnects = 0;    // server lanes revived via control plane
  uint64_t lanes_added = 0;        // elastic grow handshakes accepted
  uint64_t lanes_retired = 0;      // elastic shrink handshakes accepted
};

// Client-side failure-handling counters.
struct ClientStats {
  uint64_t qps_created = 0;   // client-half lanes built on a fresh QP
  uint64_t qps_recycled = 0;  // client-half lanes drawn from the shell pool
  uint64_t lane_failures = 0;       // client lanes quarantined
  uint64_t retries = 0;             // RPC retransmissions staged
  uint64_t failed_rpcs = 0;         // RPCs surfaced with ok=false
  uint64_t spurious_responses = 0;  // responses with no outstanding request
  uint64_t lane_reconnects = 0;     // client lanes revived via control plane
  uint64_t lanes_added = 0;         // elastic grow
  uint64_t lanes_retired = 0;       // elastic shrink
};

namespace internal {

// A request staged in a lane's combining queue. Mirrors the TCQ protocol:
// a thread first *enqueues* (one atomic swap), then copies its payload into
// the combining buffer and raises `copied`; the leader polls these
// copy-completion flags before sealing the message (§4.2). Pool-allocated by
// SendRpc, released by the posting leader; `next` threads it into the lane's
// combining queue and the leader's batch.
struct PendingSend {
  wire::ReqMeta meta;
  // Scatter-gather view of the payload (DESIGN.md §16). On the submit path
  // it references caller-owned memory — the submitting coroutine blocks on
  // sent_flag until the leader has gathered the bytes into the staging ring,
  // so the single copy of the payload is that gather. Watchdog
  // retransmissions have no blocked caller to keep the source alive, so
  // they copy into `retained` and point the slices there.
  PayloadRef payload;
  SmallBuf<128> retained;
  sim::Core* owner_core = nullptr;  // leader work is charged here
  bool copied = false;
  // Set by the quarantine drop in Pump when it unlinks a request whose
  // submitting coroutine is still mid-copy (`copied == false`). Ownership
  // transfers back to that coroutine, which frees the handle after its copy
  // completes; the pump must not Delete it (the coroutine still writes
  // through the pointer).
  bool dropped = false;
  // Raised (and signalled through the lane's sent_cond) once the message
  // containing this request has been posted. fl_send_rpc returns only then:
  // a lone thread is always its own leader and posts synchronously, so its
  // back-to-back requests never coalesce with each other (§8.5.2:
  // "coroutines of a single thread do not coalesce").
  bool* sent_flag = nullptr;
  // Condition to notify alongside sent_flag. Normally the staging lane's
  // sent_cond, but after a failed-lane migration the posting lane differs
  // from the one the submitting coroutine is parked on, so the waker travels
  // with the request. nullptr for watchdog retransmissions (no waiter).
  sim::Condition* sent_cond = nullptr;
  PendingSend* next = nullptr;
};

// Control message types carried in write-with-imm immediates (client→server;
// server→client control flows through RDMA-written per-lane control slots,
// which unlike datagram-style imms cannot be dropped by receive exhaustion).
enum class CtrlType : uint32_t {
  kRenewRequest = 0,  // client → server: {lane, median coalescing degree}
};

// Server→client per-lane control slot, RDMA-written by the QP scheduler and
// polled by the client's response dispatcher. The grant counter is
// cumulative, so a re-written slot never loses a grant.
struct CtrlSlot {
  uint32_t grant_cumulative = 0;
  uint8_t active = 0;
  uint8_t pad[3] = {};
};
static_assert(sizeof(CtrlSlot) == 8);

// With segmentation on (DESIGN.md §16), the three pad bytes carry the low
// 24 bits of the server's request-ring consumed counter. A pure-chunk upload
// generates no response messages, so without an out-of-band head report the
// client's request producer would never learn about freed ring space and the
// stream would deadlock once the ring filled. 24 bits disambiguate any delta
// up to 16 MB of ring consumption between two observations (enforced by
// requiring ring_bytes < 2^24 when segmentation is enabled); the slot stays
// 8 bytes, so flags-off control-slot writes are byte-identical.
inline void PackCtrlSlotHead(CtrlSlot* slot, uint32_t consumed_report) {
  slot->pad[0] = static_cast<uint8_t>(consumed_report);
  slot->pad[1] = static_cast<uint8_t>(consumed_report >> 8);
  slot->pad[2] = static_cast<uint8_t>(consumed_report >> 16);
}

inline uint32_t CtrlSlotHead24(const CtrlSlot& slot) {
  return static_cast<uint32_t>(slot.pad[0]) |
         (static_cast<uint32_t>(slot.pad[1]) << 8) |
         (static_cast<uint32_t>(slot.pad[2]) << 16);
}

inline uint32_t PackCtrl(CtrlType type, uint32_t lane, uint32_t value) {
  FLOCK_CHECK_LT(lane, 1u << 13);
  FLOCK_CHECK_LT(value, 1u << 16);
  return (static_cast<uint32_t>(type) << 29) | (lane << 16) | value;
}

inline void UnpackCtrl(uint32_t imm, CtrlType* type, uint32_t* lane, uint32_t* value) {
  *type = static_cast<CtrlType>(imm >> 29);
  *lane = (imm >> 16) & 0x1fff;
  *value = imm & 0xffff;
}

// wr_id tagging so shared CQs can route completions. Client- and server-role
// posts carry distinct tags: a node can play both roles on the same shared
// CQs, and error completions must resolve to the right lane type
// (ClientLane* vs ServerLane*) to quarantine the right object.
enum class WrTag : uint64_t {
  kRpcWrite = 0,     // client: coalesced message / wrap marker writes
  kMemOp = 1,        // PendingMemOp*
  kCtrl = 2,         // client: control write-with-imm / head-slot writes
  kRecv = 3,         // client: ClientLane* on posted receives
  kServerWrite = 4,  // server: response message / wrap marker writes
  kServerCtrl = 5,   // server: control-slot writes
  kServerRecv = 6,   // server: ServerLane* on posted receives
};

// Statuses that condemn the QP (and with it the lane): flushes and vanished
// peers never heal on their own. RNR/remote-access errors are treated as
// transient — the payload may be lost, but per-RPC timeouts recover it.
inline bool IsFatalWcStatus(verbs::WcStatus status) {
  return status == verbs::WcStatus::kFlushError ||
         status == verbs::WcStatus::kQpError ||
         status == verbs::WcStatus::kRemoteInvalidQp;
}

inline uint64_t TagWrId(WrTag tag, const void* ptr) {
  const uint64_t p = reinterpret_cast<uint64_t>(ptr);
  FLOCK_CHECK_EQ(p & 0x7u, 0u);
  return p | static_cast<uint64_t>(tag);
}

inline WrTag WrIdTag(uint64_t wr_id) { return static_cast<WrTag>(wr_id & 0x7u); }

template <typename T>
T* WrIdPtr(uint64_t wr_id) {
  return reinterpret_cast<T*>(wr_id & ~0x7ull);
}

struct ClientConnState;

// ---- client side of one QP lane ----
struct ClientLane {
  ClientLane(sim::Simulator& sim, uint32_t ring_bytes)
      : req_producer(ring_bytes), send_ready(sim) {}

  uint32_t index = 0;
  ClientConnState* conn = nullptr;
  verbs::Qp* qp = nullptr;

  // Request path: local staging mirror → RDMA write → server request ring.
  RingProducer req_producer;
  uint8_t* staging = nullptr;
  uint64_t staging_addr = 0;
  uint64_t remote_ring_addr = 0;
  uint32_t remote_ring_rkey = 0;

  // Out-of-band head reporting: the dispatcher RDMA-writes the cumulative
  // consumed count of the response ring into this server-side slot.
  uint64_t head_slot_remote_addr = 0;
  uint32_t head_slot_rkey = 0;
  uint64_t head_src_addr = 0;   // client-local 8B staging for the slot write
  uint8_t* head_src_ptr = nullptr;  // cached At(head_src_addr)

  // Response path: server writes into this client-local ring.
  std::unique_ptr<RingConsumer> resp_consumer;
  uint64_t resp_ring_addr = 0;
  // Client-side copies of the rkeys it advertised at build time: a deferred
  // (piggybacked) connect handshake and the shell-harvest path both need to
  // re-advertise them after the ClientLaneInfo from BuildClientLane is gone.
  uint32_t resp_ring_rkey = 0;
  uint32_t ctrl_slot_rkey = 0;

  // Credits and activation (receiver-side QP scheduling, §5.1).
  uint64_t credits = 0;
  bool active = true;
  // Quarantined: the lane's QP errored. Queued work and threads migrate to
  // surviving lanes, in-flight RPCs recover via retry. With
  // FlockConfig::lane_reconnect the connection's reconnect daemon revives the
  // lane through the control plane; otherwise it stays quarantined forever.
  bool failed = false;
  // The reconnect daemon is mid-handshake for this lane (introspection only;
  // the lane still counts as failed until the handshake lands).
  bool reconnecting = false;
  // Retired by elastic shrink: deactivated for good, excluded from failure
  // accounting and never reconnected or reactivated.
  bool retired = false;
  // A response dispatcher is between its probe of this lane's rings and the
  // matching consume; the reconnect daemon must not resync state under it.
  bool in_dispatch = false;
  // Times this lane was revived through the control plane.
  uint64_t reconnects = 0;
  // Thread ids this lane was serving when it was quarantined; the reconnect
  // daemon steers exactly these threads back on revival so the surviving
  // lanes' phase-aligned coalescing groups stay intact.
  std::vector<uint32_t> evacuated_tids;
  bool renew_in_flight = false;
  // Dispatcher passes spent with queued work but zero credits. Only counted
  // while fault injection is armed: a lost renewal imm or a lost grant-slot
  // write (both unacked RDMA) would otherwise starve the lane forever, so
  // after enough starved passes the dispatcher re-sends the renewal.
  uint32_t starved_passes = 0;
  sim::Condition send_ready;  // credits or ring space became available
  // Client-local control slot the server RDMA-writes (grants + activation).
  uint64_t ctrl_slot_addr = 0;
  const uint8_t* ctrl_slot_ptr = nullptr;  // cached At(ctrl_slot_addr): the
                                           // dispatcher polls this every pass
  uint32_t grants_seen = 0;  // cumulative grants already applied

  // Flock synchronization state (§4.2). The combining queue is an intrusive
  // FIFO threaded through the pool-allocated PendingSends.
  PendingSend* combine_head = nullptr;
  PendingSend* combine_tail = nullptr;
  // The pump (transient leader) is a persistent per-lane process: spawned on
  // the lane's first request, it parks on pump_wake when the combining queue
  // drains instead of exiting, so enqueuing a request never rebuilds the
  // (large) pump coroutine frame. pump_running means "actively pumping".
  bool pump_running = false;
  bool pump_spawned = false;
  sim::OneShotEvent pump_wake;
  std::unique_ptr<sim::Condition> copy_done;  // follower copy-completion flags
  std::unique_ptr<sim::Condition> sent_cond;  // "your message was posted"

  // Metrics reported to the receiver.
  WindowedMedian<uint32_t, 64> coalesce_degree;
  uint64_t batch_histogram[33] = {};  // distribution of combined batch sizes
  uint64_t posts = 0;  // for selective signaling
  uint64_t messages_sent = 0;
  uint64_t requests_sent = 0;

  // One-sided operations (§6): intrusive FIFO through the PendingMemOps.
  PendingMemOp* memop_head = nullptr;
  PendingMemOp* memop_tail = nullptr;
  bool mem_pump_running = false;

  // Bytes of responses consumed since we last sent anything on this lane;
  // beyond a threshold the dispatcher pushes a head update out of band so the
  // server's view of the response ring never goes permanently stale (§4.1's
  // "the sender rarely reads" fallback, push- instead of pull-based).
  uint64_t resp_bytes_since_send = 0;

  // Segmentation only (DESIGN.md §16): full 32-bit cumulative request-ring
  // consumed counter, reconstructed from piggyback heads and the 24-bit
  // control-slot reports (see PackCtrlSlotHead). Unused with flags off.
  uint32_t seg_req_consumed = 0;

  // Outstanding requests per lane (migration safety, §5.2).
  uint64_t inflight = 0;
};

// ---- server side of one QP lane ----
struct ServerLane {
  explicit ServerLane(uint32_t ring_bytes) : resp_producer(ring_bytes) {}

  uint32_t index = 0;       // lane index within its connection
  int client_node = -1;
  uint32_t sender_key = 0;  // index into ServerState::senders
  verbs::Qp* qp = nullptr;

  // Request ring (server-local memory, written by the client).
  std::unique_ptr<RingConsumer> req_consumer;
  uint64_t req_ring_addr = 0;

  // Response path: server staging mirror → RDMA write → client response ring.
  RingProducer resp_producer;
  uint8_t* staging = nullptr;
  uint64_t staging_addr = 0;
  uint64_t remote_ring_addr = 0;
  uint32_t remote_ring_rkey = 0;

  // Server-side head slot the client's dispatcher writes into.
  uint64_t head_slot_addr = 0;
  const uint8_t* head_slot_ptr = nullptr;  // cached At(head_slot_addr)
  // rkeys advertised to the client at connect, kept for re-advertisement in
  // the reconnect accept (the MRs themselves survive a QP replacement).
  uint32_t req_ring_rkey = 0;
  uint32_t head_slot_rkey = 0;

  // Control slot on the client that this server lane writes.
  uint64_t ctrl_slot_remote_addr = 0;
  uint32_t ctrl_slot_rkey = 0;
  uint64_t ctrl_src_addr = 0;     // server-local staging for the slot write
  uint8_t* ctrl_src_ptr = nullptr;  // cached At(ctrl_src_addr)
  uint32_t grant_cumulative = 0;  // total credits ever granted on this lane

  // Receiver-side scheduling state (§5.1).
  bool active = true;
  // Quarantined: the QP errored (flush on our posts, or the client side
  // vanished). Excluded from dispatch, credit grants and redistribution
  // until a control-plane reconnect revives it.
  bool failed = false;
  // Retired by elastic shrink: never reactivated or granted credits again.
  // Still dispatched until its request ring drains.
  bool retired = false;
  uint64_t credits_outstanding = 0;  // granted minus (estimated) consumed
  uint64_t utilization = 0;          // U_ij: Σ reported degrees this interval
  uint64_t posts = 0;
  uint64_t messages_handled = 0;
  uint64_t requests_handled = 0;
  uint64_t messages_at_last_sweep = 0;  // stall-safety for pending grants
  bool in_service = false;  // handed to an RPC worker (worker-pool mode)

  // Segmentation only (DESIGN.md §16): request-ring bytes consumed since the
  // head was last reported to the client (piggybacked on a response or
  // packed into a control-slot write). Once it exceeds ring_bytes / 4 the
  // dispatcher pushes a control-slot write so a pure-chunk upload (which
  // produces no response messages) cannot deadlock the client's producer.
  uint64_t seg_bytes_since_report = 0;

  // ---- tenancy (DESIGN.md §15) ----
  // Identity registered at handshake time; authoritative over the data-plane
  // stamp. Always set fresh by the connect/reconnect/add-lane paths — lane
  // shells drawn from the recycling pool carry no tenant state.
  tenant::TenantId tenant_id = tenant::kDefaultTenant;
  // Credits the weighted-fair layer withheld from renewals on this lane
  // (tenant over its window budget); paid out of fresh budget at the next
  // scheduler windows, oldest lanes first.
  uint32_t deferred_grant = 0;
};

// Per-client-node aggregation at the server (sender i in §5.1).
struct SenderState {
  int client_node = -1;
  std::vector<ServerLane*> lanes;
  uint64_t utilization = 0;  // U_i
  bool functioning = true;
  // All lanes failed (directly, or by dead-sender reclamation): the sender
  // no longer participates in the QP-scheduling budget at all.
  bool dead = false;
  // Redistribute passes to skip dead-sender reclamation after a lane of this
  // sender was revived through the control plane. A just-reconnected lane has
  // zero utilization by construction; without the grace, the reclamation's
  // "failed sibling + idle interval" test would re-condemn it immediately
  // (the double-reclaim bug) and a rejoining node could never come back.
  uint32_t revive_grace = 0;
  // ---- tenancy (DESIGN.md §15) ----
  // Identity this sender's connect handshake presented, and the admission
  // accounting charged for it (released exactly once at teardown or
  // dead-sender reclamation, whichever runs first — tenant_charged guards
  // the double-release).
  tenant::TenantId tenant_id = tenant::kDefaultTenant;
  uint32_t tenant_lanes_charged = 0;
  bool tenant_charged = false;
};

// ---- lane recycling shells (DESIGN.md §13) ----
//
// The transport resources of a torn-down lane: its QP (reset via
// Device::ResetQp, so anything in flight from the old incarnation is
// epoch-dropped) plus the ring/slot memory and the MR rkeys covering it.
// MemorySpace never frees, so under churn these must be reused or the
// footprint grows without bound. Pools are per-node LIFO stacks, matched by
// ring_bytes; a shell whose geometry differs from the next connect's request
// is skipped (it stays pooled for a later matching connect).

struct ClientLaneShell {
  verbs::Qp* qp = nullptr;
  uint32_t ring_bytes = 0;
  uint64_t staging_addr = 0;
  uint64_t head_src_addr = 0;
  uint64_t ctrl_slot_addr = 0;
  uint64_t resp_ring_addr = 0;
  uint32_t resp_ring_rkey = 0;
  uint32_t ctrl_slot_rkey = 0;
};

struct ServerLaneShell {
  verbs::Qp* qp = nullptr;
  uint32_t ring_bytes = 0;
  uint64_t req_ring_addr = 0;
  uint64_t head_slot_addr = 0;
  uint64_t ctrl_src_addr = 0;
  uint64_t staging_addr = 0;
  uint32_t req_ring_rkey = 0;
  uint32_t head_slot_rkey = 0;
};

// ---- per-node / per-connection state containers ----

// The per-node environment every mechanism module runs against: the cluster,
// the node identity, the shared CQs, the transport seam, and the runtime's
// RNG stream. One NodeEnv per FlockRuntime; the pointers alias the runtime's
// own members (notably rng_state: client canaries, thread seeds and server
// canaries must draw from one per-node stream, in program order).
struct NodeEnv {
  verbs::Cluster* cluster = nullptr;
  int node = -1;
  const FlockConfig* config = nullptr;
  TransportOps* transport = nullptr;
  verbs::Cq* send_cq = nullptr;
  verbs::Cq* recv_cq = nullptr;
  uint64_t* rng_state = nullptr;

  sim::Simulator& sim() const { return cluster->sim(); }
  const sim::CostModel& cost() const { return cluster->cost(); }
  fabric::MemorySpace& mem() const { return cluster->mem(node); }
  verbs::Device& device() const { return cluster->device(node); }
  sim::Cpu& cpu() const { return cluster->cpu(node); }
};

struct ClientConnState;

// Client-role state of one node: threads, stats, hot-path pools, and the
// registry of connection states the client procs iterate.
struct ClientState {
  ClientStats stats;
  std::vector<std::unique_ptr<FlockThread>> threads;
  // Push order == connect order; entries alias Connection-owned state and
  // stay valid for the runtime's lifetime (handles are never destroyed).
  std::vector<ClientConnState*> conns;
  bool started = false;
  // Hot-path object pools (per node; the simulation is single-threaded).
  Pool<PendingRpc> rpc_pool;
  Pool<PendingSend> send_pool;
  // Recycling pool (FlockConfig::qp_recycling): shells harvested by
  // CloseClientConn, drawn by BuildClientLane.
  std::vector<ClientLaneShell> lane_pool;
};

// The per-connection state behind one Connection handle: one per
// (client node, server node) pair, multiplexing threads over a set of lanes.
struct ClientConnState {
  NodeEnv* env = nullptr;
  ClientState* client = nullptr;
  int server_node = -1;
  uint32_t conn_id = 0;
  // Kicked by QuarantineLane; only constructed when lane_reconnect is on.
  std::unique_ptr<sim::Condition> reconnect_cond;
  std::vector<std::unique_ptr<ClientLane>> lanes;
  // ---- connection-storm fields (DESIGN.md §13) ----
  // Lane count the handle ultimately wants; with lazy_lanes only lane 0 is
  // built at connect and EnsureLaneSetup grows toward this on first use.
  uint32_t target_lanes = 0;
  // The ConnectRequest has not been sent yet (connect_piggyback): the first
  // RPC's EnsureLaneSetup flushes it before staging anything.
  bool handshake_pending = false;
  // An EnsureLaneSetup handshake is in flight; later callers park on
  // setup_cond instead of racing a second handshake.
  bool setup_in_progress = false;
  // Allocated only when lazy_lanes or connect_piggyback is on — its nullness
  // is the hot-path gate, so default builds never touch any of this.
  std::unique_ptr<sim::Condition> setup_cond;
  // Closed by CloseConnection: lanes harvested, detached from client procs.
  bool closed = false;
  // Distinct thread ids that have sent on this handle (lazy growth signal).
  std::vector<uint8_t> thread_seen;
  uint32_t threads_seen = 0;
  // thread id → lane index; `desired` is written by the thread scheduler and
  // applied by LaneFor once the thread has drained its outstanding requests.
  std::vector<uint32_t> thread_lane;
  std::vector<uint32_t> desired_lane;
  // Outstanding RPCs, seq → rpc, one open-addressed map per thread id.
  std::vector<SeqSlotMap<PendingRpc>> pending;
  // ---- tenancy (DESIGN.md §15) ----
  // Identity this handle presents at handshake and stamps into every
  // client→server message header. Fixed at fl_connect time.
  tenant::TenantId tenant_id = tenant::kDefaultTenant;
  // The handshake was rejected by tenancy admission control: the handle is
  // closed before it ever carried traffic, and StageRpc fails RPCs on it
  // instead of parking them on a lane that will never get credits.
  bool admission_rejected = false;
};

// Server-role state of one node. Handler lookup is a linear scan:
// applications register a handful of RPC ids, and a short scan beats a hash
// on the per-request path.
struct ServerState {
  std::vector<std::pair<uint16_t, RpcHandler>> handlers;
  const RpcHandler* FindHandler(uint16_t rpc_id) const {
    for (const auto& [id, handler] : handlers) {
      if (id == rpc_id) {
        return &handler;
      }
    }
    return nullptr;
  }
  std::vector<std::unique_ptr<ServerLane>> lanes;
  std::vector<SenderState> senders;
  std::vector<std::vector<ServerLane*>> dispatcher_lanes;
  int dispatcher_count = 0;
  // Worker-pool mode: lanes with detected work, drained by RpcWorker procs.
  std::deque<ServerLane*> work_queue;
  std::unique_ptr<sim::Condition> work_ready;
  bool started = false;
  ServerStats stats;
  // Segmented-payload reassembly (DESIGN.md §16): initialized by StartServer
  // when segment_threshold > 0, untouched otherwise.
  ReassemblyPool reassembly;
  // ---- recycling (DESIGN.md §13) ----
  // Shells harvested from departed clients' lanes (TearDownSenders under
  // qp_recycling), drawn by BuildServerLane.
  std::vector<ServerLaneShell> lane_pool;
  // Harvested ServerLane objects. Never destroyed and never reused: CQEs
  // flushed at teardown (ErrorQp always delivers error completions, and each
  // lane holds ~16 posted receives) still route through wr_id pointers into
  // these objects, and a reused object wired to its recycled QP would match
  // the stale CQE's qpn and be falsely re-quarantined. The object shell is a
  // few hundred bytes; the expensive parts (QP, rings, MRs) live on in
  // lane_pool.
  std::vector<std::unique_ptr<ServerLane>> graveyard;
};

// ---- lane lifecycle (lane.cc) ----

// Marks a lane's QP as dead: deactivates it, zeroes its credits and wakes
// the pump so queued work migrates to a surviving lane. Idempotent. With
// lane_reconnect enabled it also kicks the reconnect daemon.
void QuarantineLane(ClientConnState& conn, ClientLane& lane);

// The lane serving `thread`, applying any pending scheduler migration and
// repairing assignments that point at dead lanes.
ClientLane& LaneFor(ClientConnState& conn, FlockThread& thread);

// Marks a server lane's QP dead: no more dispatch, grants or reactivation.
void QuarantineServerLane(ServerLane& lane, ServerStats& stats);

// Routes an errored send completion to the owning lane (either role: the
// node-shared CQs are drained by whichever poller gets there first).
void HandleSendError(const verbs::Completion& wc, ServerStats& stats);

// Accelerates watchdog recovery of the RPCs accounted to a just-revived
// lane: their deadlines collapse to "now" so the next tick retransmits.
void ExpireLaneDeadlines(ClientConnState& conn, uint32_t lane_index);

// Client half of one lane: QP + client-local memory + MRs, advertised in
// `info`. The accept completes it via WireClientLane. Shared by the connect
// handshake and elastic add-lane.
std::unique_ptr<ClientLane> BuildClientLane(NodeEnv& env, ClientConnState& conn,
                                            uint32_t index,
                                            ctrl::wire::ClientLaneInfo* info);

// Applies a (connect/reconnect/add-lane) accept to the client lane: peer QP
// wiring, remote addresses, posted receives, bootstrap control slot.
void WireClientLane(NodeEnv& env, ClientLane& lane, int server_node,
                    const ctrl::wire::ServerLaneInfo& info,
                    uint32_t grant_cumulative);

// Server half of one lane, wired to the advertised client QP. Under
// qp_recycling a pooled shell of matching geometry is reused (ResetQp'd QP,
// zeroed rings) instead of creating fresh resources; `server` carries the
// pool and the created/recycled counters either way.
std::unique_ptr<ServerLane> BuildServerLane(NodeEnv& env, ServerState& server,
                                            uint32_t index,
                                            int client_node, uint32_t sender_key,
                                            uint32_t ring_bytes,
                                            const ctrl::wire::ClientLaneInfo& in,
                                            bool active,
                                            ctrl::wire::ServerLaneInfo* out);

// Message handlers behind FlockRuntime::OnCtrlMessage (server side of the
// control-plane handshakes, DESIGN.md §10).
uint32_t HandleConnectRequest(NodeEnv& env, ServerState& server,
                              const ctrl::wire::MsgHeader& header,
                              const uint8_t* msg, uint8_t* resp,
                              uint32_t resp_cap);
uint32_t HandleReconnectRequest(NodeEnv& env, ServerState& server,
                                const ctrl::wire::MsgHeader& header,
                                const uint8_t* msg, uint8_t* resp,
                                uint32_t resp_cap);
uint32_t HandleAddLaneRequest(NodeEnv& env, ServerState& server,
                              const ctrl::wire::MsgHeader& header,
                              const uint8_t* msg, uint8_t* resp,
                              uint32_t resp_cap);
uint32_t HandleRetireLaneRequest(NodeEnv& env, ServerState& server,
                                 const ctrl::wire::MsgHeader& header,
                                 const uint8_t* msg, uint8_t* resp,
                                 uint32_t resp_cap);
// Orderly whole-handle close (DESIGN.md §15): tears down the named sender
// exactly like a membership leave would, so sender-slot and tenant admission
// accounting are reclaimed immediately. Sent by CloseConnection under
// tenancy.
uint32_t HandleDisconnectRequest(NodeEnv& env, ServerState& server,
                                 const ctrl::wire::MsgHeader& header,
                                 const uint8_t* msg, uint8_t* resp,
                                 uint32_t resp_cap);

// Tears down one live sender: quarantines its lanes, marks it dead, releases
// tenant admission accounting, and (under qp_recycling) harvests lane shells
// into the pool. Shared by the membership-leave sweep and the Disconnect
// handler.
void TearDownOneSender(NodeEnv& env, ServerState& server, SenderState& sender);

// Membership change (server side): tears down a departed client's senders.
// Returns true if any sender was torn down — the caller must then
// repartition the AQP budget (sched/receiver.h Redistribute) immediately.
bool TearDownSenders(NodeEnv& env, ServerState& server, int node);

// ---- connection-storm path (DESIGN.md §13) ----

// Client half of the connect handshake: encodes a ConnectRequest from the
// already-built lanes in conn.lanes, Calls the server, decodes the accept and
// wires every lane. Shared by the synchronous Connect, the asynchronous
// ConnectAsync and the piggybacked flush in EnsureLaneSetup. Returns false on
// rejection; *server_fresh / *server_recycled report the server-side QP
// provenance from the accept so the async callers can charge qp_create vs
// qp_reset setup time. A degraded accept (tenancy admission granted fewer
// lanes than requested) succeeds with the surplus client halves dropped and
// conn.target_lanes clamped. On rejection, *reject_reason (when non-null)
// carries the server's RejectReason so callers can tell a tenancy admission
// reject from a hard failure.
bool ConnectHandshake(ClientConnState& conn, uint32_t* server_fresh,
                      uint32_t* server_recycled,
                      ctrl::wire::RejectReason* reject_reason = nullptr);

// First-use hook on the staging path (StageRpc / SubmitMemOp), invoked only
// when conn.setup_cond is non-null (lazy_lanes or connect_piggyback): flushes
// a pending piggybacked ConnectRequest, then materializes deferred lanes via
// the AddLane handshake while more distinct threads use the handle than lanes
// exist (up to conn.target_lanes). Serialized per connection through
// setup_in_progress / setup_cond.
sim::Co<void> EnsureLaneSetup(ClientConnState& conn, FlockThread& thread);

// Client half of connection close: retires every lane, and under qp_recycling
// harvests the quiescent ones (no pump running, nothing in flight, not
// mid-dispatch) into the client shell pool — ResetQp'd QP, rings, rkeys.
// Non-quiescent lanes are merely retired (their resources are abandoned, as a
// quarantine would). Marks the connection closed; the caller detaches it from
// the client procs.
void CloseClientConn(ClientConnState& conn);

// Control-plane client daemons (spawned by Connect only when the matching
// FlockConfig flag is set, so default traces gain no procs or events).
sim::Proc ReconnectDaemon(ClientConnState& conn);
sim::Proc ElasticScaler(ClientConnState& conn);

}  // namespace internal
}  // namespace flock

#endif  // FLOCK_FLOCK_LANE_H_
