// The transport seam: the narrow post/poll surface every RPC stack in this
// repo (flock, udrpc, rcrpc) drives its QPs and CQs through.
//
// The mechanism modules above (combine, sched, dispatch, lane) never touch
// verbs::Qp / verbs::Cq directly for data-path work — they go through a
// TransportOps*, so a future real-ibverbs backend slots in underneath without
// touching any of them. The simulated verbs layer implements the interface as
// plain forwarders; dispatch is host-side only and leaves the event trace of
// a simulation untouched.
#ifndef FLOCK_FLOCK_TRANSPORT_H_
#define FLOCK_FLOCK_TRANSPORT_H_

#include <cstddef>

#include "src/verbs/device.h"

namespace flock {

// Completions drained per ibv_poll_cq-style call: dispatcher and scheduler
// passes pull CQEs in batches of this size (stack array) instead of one Poll
// per completion. Matches the num_entries real dataplanes pass to poll_cq.
inline constexpr size_t kCqPollBatch = 32;

class TransportOps {
 public:
  virtual ~TransportOps() = default;

  // Posts one WR (rings one doorbell). The CPU cost of the WQE build and the
  // doorbell is charged by the caller, exactly as with ibv_post_send.
  virtual verbs::WcStatus Post(verbs::Qp& qp, const verbs::SendWr& wr) = 0;

  // Batched post: many WRs, one doorbell (a linked WR list). All-or-nothing;
  // see verbs::Qp::PostSendBatch for the failure contract.
  virtual verbs::WcStatus PostBatch(verbs::Qp& qp, const verbs::SendWr* wrs,
                                    size_t count) = 0;

  // Replenishes the receive queue.
  virtual void PostRecv(verbs::Qp& qp, const verbs::RecvWr& wr) = 0;

  // Vectorized CQE drain: pops up to `max` completions, returns the count.
  // CPU cost is charged by the caller, typically once per batch.
  virtual size_t PollBatch(verbs::Cq& cq, verbs::Completion* out,
                           size_t max) = 0;
};

// The simulated verbs backend: forwards straight to Qp/Cq.
class SimTransport final : public TransportOps {
 public:
  verbs::WcStatus Post(verbs::Qp& qp, const verbs::SendWr& wr) override {
    return qp.PostSend(wr);
  }
  verbs::WcStatus PostBatch(verbs::Qp& qp, const verbs::SendWr* wrs,
                            size_t count) override {
    return qp.PostSendBatch(wrs, count);
  }
  void PostRecv(verbs::Qp& qp, const verbs::RecvWr& wr) override {
    qp.PostRecv(wr);
  }
  size_t PollBatch(verbs::Cq& cq, verbs::Completion* out, size_t max) override {
    return cq.PollBatch(out, max);
  }
};

// The process-wide simulated backend instance. Stateless, so one is enough
// for every runtime on every simulated node.
TransportOps& SimTransportInstance();

}  // namespace flock

#endif  // FLOCK_FLOCK_TRANSPORT_H_
