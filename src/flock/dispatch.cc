#include "src/flock/dispatch.h"

#include <algorithm>
#include <cstring>

#include "src/ctrl/control_plane.h"
#include "src/flock/sched/receiver.h"

namespace flock {
namespace internal {

sim::Proc RequestDispatcher(NodeEnv& env, ServerState& server, int index) {
  // Core 0 runs the QP scheduler; dispatchers use the rest.
  sim::Core& core = env.cpu().core(1 + index);
  const sim::CostModel& cost = env.cost();
  const FlockConfig& config = *env.config;
  DispatchScratch scratch;
  // The gather phase can batch up to 2 * max_coalesce - 1 requests.
  scratch.data.resize(DispatchScratchBytes(config));

  for (;;) {
    Nanos pass_cost = 0;
    for (size_t li = 0;
         li < server.dispatcher_lanes[static_cast<size_t>(index)].size(); ++li) {
      ServerLane& lane = *server.dispatcher_lanes[static_cast<size_t>(index)][li];
      pass_cost += cost.cpu_ring_poll_empty;
      if (lane.in_service || lane.failed) {
        continue;  // owned by an RPC worker right now, or quarantined
      }
      wire::MsgHeader header;
      const wire::ProbeResult probe = lane.req_consumer->Probe(&header);
      if (probe == wire::ProbeResult::kMessage) {
        if (config.server_workers > 0) {
          // Worker-pool mode: route the lane to the pool (small routing cost)
          // and let a worker gather + execute + respond.
          lane.in_service = true;
          server.work_queue.push_back(&lane);
          server.work_ready->NotifyOne();
          pass_cost += cost.cpu_cacheline_transfer;
          continue;
        }
        // in_service also fences the control plane: a reconnect handshake
        // must not re-base this lane's rings while the dispatcher is between
        // its probe and the matching consume.
        lane.in_service = true;
        co_await core.Work(pass_cost);
        pass_cost = 0;
        co_await HandleRequestMessage(env, server, lane, core, header, scratch);
        lane.in_service = false;
      }
    }
    co_await core.Work(pass_cost > 0 ? pass_cost : cost.cpu_ring_poll_empty);
  }
}

sim::Proc RpcWorker(NodeEnv& env, ServerState& server, int index) {
  // Workers run on the cores above the dispatchers'.
  sim::Core& core = env.cpu().core(1 + server.dispatcher_count + index);
  const sim::CostModel& cost = env.cost();
  const FlockConfig& config = *env.config;
  DispatchScratch scratch;
  scratch.data.resize(DispatchScratchBytes(config));
  for (;;) {
    while (server.work_queue.empty()) {
      co_await server.work_ready->Wait();
    }
    ServerLane& lane = *server.work_queue.front();
    server.work_queue.pop_front();
    wire::MsgHeader header;
    if (!lane.failed &&
        lane.req_consumer->Probe(&header) == wire::ProbeResult::kMessage) {
      co_await core.Work(cost.cpu_cacheline_transfer);  // take over the lane
      co_await HandleRequestMessage(env, server, lane, core, header, scratch);
    }
    lane.in_service = false;
  }
}

namespace {

// Streams one above-threshold handler response as a SegMark chunk train on
// `lane`'s response ring (DESIGN.md §16). Large responses never enter the
// accumulation buffer: each chunk is posted as its own single-request
// message, so the coalesced metadata responses gathered alongside are not
// held hostage to ring space for the whole extent. Returns false when the
// lane died mid-stream (the caller abandons the rest of the gather).
sim::Co<bool> StreamSegmentedResponse(NodeEnv& env, ServerState& server,
                                      ServerLane& lane, sim::Core& core,
                                      wire::ReqMeta meta, const uint8_t* data,
                                      uint32_t len) {
  const sim::CostModel& cost = env.cost();
  const FlockConfig& config = *env.config;
  const uint32_t chunk = SegmentChunkBytes(config);
  uint32_t offset = 0;
  while (offset < len) {
    const uint32_t clen = std::min(chunk, len - offset);
    const bool last = offset + clen == len;
    wire::ReqMeta cmeta = meta;
    cmeta.data_len = wire::PackSegLen(
        offset == 0 ? wire::SegMark::kFirst
                    : (last ? wire::SegMark::kLast : wire::SegMark::kMiddle),
        clen);
    const uint32_t msg_len = wire::MessageBytes(1, clen);
    RingProducer::Reservation resv;
    uint64_t stalls = 0;
    while (!lane.resp_producer.Reserve(msg_len, &resv)) {
      if (lane.failed) {
        server.stats.responses_dropped += 1;
        co_return false;
      }
      if (env.cluster->fault().armed() && (++stalls & 63) == 0) {
        WriteCtrlSlot(env, lane, server.stats, /*signaled=*/true);
        if (lane.failed) {
          server.stats.responses_dropped += 1;
          co_return false;
        }
      }
      co_await sim::Delay(env.sim(), kMicrosecond);
      uint32_t slot_value = 0;
      std::memcpy(&slot_value, lane.head_slot_ptr, 4);
      lane.resp_producer.OnHeadUpdate(slot_value);
    }
    const uint64_t canary = SplitMix64(*env.rng_state);
    wire::MessageEncoder encoder(lane.staging + resv.offset, msg_len, canary);
    encoder.Add(cmeta, data + offset);
    const uint32_t total = encoder.Seal(lane.req_consumer->consumed_report(),
                                        /*credit_grant=*/0, wire::kFlagSegment);
    FLOCK_CHECK_EQ(total, msg_len);
    lane.seg_bytes_since_report = 0;  // the chunk header carried the report
    co_await core.Work(cost.cpu_msg_fixed + cost.cpu_msg_per_req +
                       cost.MemcpyCost(clen));

    verbs::SendWr wrs[2];
    size_t nwrs = 0;
    if (resv.wrapped) {
      wire::EncodeWrapMarker(lane.staging + resv.marker_offset, canary);
      verbs::SendWr marker;
      marker.wr_id = TagWrId(WrTag::kServerWrite, &lane);
      marker.opcode = verbs::Opcode::kWrite;
      marker.local_addr = lane.staging_addr + resv.marker_offset;
      marker.length = wire::kWrapMarkerBytes;
      marker.remote_addr = lane.remote_ring_addr + resv.marker_offset;
      marker.rkey = lane.remote_ring_rkey;
      marker.signaled = false;
      wrs[nwrs++] = marker;
    }
    verbs::SendWr msg;
    msg.wr_id = TagWrId(WrTag::kServerWrite, &lane);
    msg.opcode = verbs::Opcode::kWrite;
    msg.local_addr = lane.staging_addr + resv.offset;
    msg.length = msg_len;
    msg.remote_addr = lane.remote_ring_addr + resv.offset;
    msg.rkey = lane.remote_ring_rkey;
    lane.posts += 1;
    msg.signaled = (lane.posts % config.signal_interval) == 0;
    wrs[nwrs++] = msg;
    co_await core.Work(static_cast<Nanos>(nwrs) * cost.cpu_wqe_prep +
                       cost.cpu_mmio_doorbell);
    if (env.transport->PostBatch(*lane.qp, wrs, nwrs) !=
        verbs::WcStatus::kSuccess) {
      QuarantineServerLane(lane, server.stats);
      server.stats.responses_dropped += 1;
      co_return false;
    }
    offset += clen;
  }
  server.stats.responses_sent += 1;
  co_return true;
}

}  // namespace

sim::Co<void> HandleRequestMessage(NodeEnv& env, ServerState& server,
                                   ServerLane& lane, sim::Core& core,
                                   const wire::MsgHeader& first,
                                   DispatchScratch& scratch) {
  const sim::CostModel& cost = env.cost();
  const FlockConfig& config = *env.config;
  // Tenancy attribution (DESIGN.md §15): resolved once per gather; nullptr
  // with tenancy off, so default runs never touch the registry.
  tenant::TenantRegistry* tenants =
      config.tenancy ? &ctrl::ControlPlane::For(*env.cluster).tenants()
                     : nullptr;
  uint64_t tenant_bytes = 0;

  // Freshen the response-ring view from the client's out-of-band head slot.
  uint32_t slot_value = 0;
  std::memcpy(&slot_value, lane.head_slot_ptr, 4);
  lane.resp_producer.OnHeadUpdate(slot_value);

  // Gather phase: drain consecutive complete messages from this lane's ring
  // (bounded) so responses coalesce *across* request messages too (§4.3).
  const bool seg_on = config.segment_threshold > 0;
  // What a not-yet-seen request may add to the coalesced response: with
  // segmentation on, anything bigger streams out as its own chunk train.
  const uint32_t resp_cap_est =
      seg_on ? config.segment_threshold : config.max_payload;
  scratch.resp.clear();
  uint32_t total_reqs = 0;
  uint32_t resp_bytes = 0;
  uint32_t offset = 0;
  Nanos work = 0;
  wire::MsgHeader header = first;
  while (true) {
    lane.resp_producer.OnHeadUpdate(header.piggyback_head);
    const uint32_t n = header.num_reqs;
    scratch.views.resize(n);
    FLOCK_CHECK(wire::DecodeRequests(lane.req_consumer->MessagePtr(), header,
                                     scratch.views.data()))
        << "malformed coalesced message";
    work += cost.cpu_msg_fixed + static_cast<Nanos>(n) * cost.cpu_msg_per_req;
    for (uint32_t i = 0; i < n; ++i) {
      const wire::ReqView& req = scratch.views[i];
      const uint8_t* req_data = req.data;
      uint32_t req_len = wire::SegLen(req.meta.data_len);
      const wire::SegMark mark = wire::SegOf(req.meta.data_len);
      if (mark != wire::SegMark::kNone) {
        // Segment chunk: accumulate; only a completed train runs a handler.
        uint32_t complete_len = 0;
        const ReassemblyKey key{&lane, req.meta.thread_id, req.meta.seq};
        const uint8_t* complete = server.reassembly.Feed(
            key, mark, req_data, req_len, env.sim().Now(), &complete_len);
        work += cost.MemcpyCost(req_len);  // copy into the reassembly buffer
        if (complete == nullptr) {
          continue;  // partial (or dropped: the watchdog retransmits)
        }
        req_data = complete;
        req_len = complete_len;
      }
      const RpcHandler* handler = server.FindHandler(req.meta.rpc_id);
      FLOCK_CHECK(handler != nullptr) << "no handler for rpc " << req.meta.rpc_id;
      Nanos handler_cpu = 0;
      const uint32_t resp_len =
          (*handler)(req_data, req_len, scratch.data.data() + offset,
                     config.max_payload, &handler_cpu);
      FLOCK_CHECK_LE(resp_len, config.max_payload);
      work += handler_cpu + cost.cpu_msg_per_req;
      if (seg_on && resp_len > config.segment_threshold) {
        // Stream it now; `offset` stays put, so the buffer slot is reused.
        co_await core.Work(work);
        work = 0;
        if (!co_await StreamSegmentedResponse(env, server, lane, core,
                                              req.meta,
                                              scratch.data.data() + offset,
                                              resp_len)) {
          co_return;  // lane died mid-stream
        }
        continue;
      }
      DispatchScratch::RespEntry entry;
      entry.meta = req.meta;  // echo thread id, seq, rpc id
      entry.meta.data_len = resp_len;
      entry.offset = offset;
      scratch.resp.push_back(entry);
      offset += resp_len;
      resp_bytes += resp_len;
    }
    // Retire the request message (zeroing = Free/Processed state of Fig. 5).
    work += cost.MemcpyCost(header.total_len);
    lane.req_consumer->Consume(header);
    if (seg_on) {
      lane.seg_bytes_since_report += header.total_len;
    }
    lane.messages_handled += 1;
    lane.requests_handled += n;
    server.stats.messages += 1;
    server.stats.requests += n;
    total_reqs += n;
    if (tenants != nullptr) {
      tenant_bytes += header.total_len;
      // Cross-check the data-plane stamp against the identity the handshake
      // registered for this lane. The handshake is authoritative — a
      // mismatch is counted (forged or corrupted stamp) but the message is
      // still served under the lane's registered tenant.
      if (wire::TenantFromFlags(header.flags) !=
          (lane.tenant_id & wire::kMaxTenantStamp)) {
        tenants->NoteStampMismatch(lane.tenant_id);
      }
    }
    if (!config.coalescing || total_reqs >= config.max_coalesce) {
      break;  // coalescing disabled: one response message per request message
    }
    if (lane.req_consumer->Probe(&header) != wire::ProbeResult::kMessage) {
      break;
    }
    // Stop if the next message's responses could overflow the encoding
    // (worst case: every one of its requests yields a full-size accumulated
    // response). 64-bit: the worst-case product is not ring-bounded.
    if (wire::MessageBytes64(
            scratch.resp.size() + header.num_reqs,
            uint64_t{resp_bytes} +
                uint64_t{header.num_reqs} * resp_cap_est) >
        config.ring_bytes / 2) {
      break;
    }
  }
  if (tenants != nullptr) {
    tenants->OnRequests(lane.tenant_id, total_reqs, tenant_bytes);
  }
  co_await core.Work(work);

  const uint32_t num_resps = static_cast<uint32_t>(scratch.resp.size());
  if (num_resps == 0) {
    // Pure chunk feed: no response message to piggyback the request-ring
    // head on, so once enough ring bytes were consumed push the report
    // through the control slot — otherwise an extent upload deadlocks the
    // client's producer on a "full" ring that is actually empty. The report
    // also goes out whenever this gather drained the ring: no further
    // consumption means no further report, and bytes left unreported below
    // the threshold would pin the client's producer forever — a wrapped
    // reservation of a ring_bytes/2 batch needs the ring near-empty, so
    // even a small stale remainder is a deadlock, not just slack.
    if (seg_on && lane.seg_bytes_since_report > 0) {
      wire::MsgHeader peek;
      const bool drained =
          lane.req_consumer->Probe(&peek) != wire::ProbeResult::kMessage;
      if (drained || lane.seg_bytes_since_report >= config.ring_bytes / 4) {
        WriteCtrlSlot(env, lane, server.stats);
        co_await core.Work(cost.cpu_wqe_prep + cost.cpu_mmio_doorbell);
      }
    }
    co_return;
  }

  // Reserve response-ring space; while stalled, re-read the head slot the
  // client's dispatcher keeps fresh (the §4.1 fallback for a stale Head).
  const uint32_t msg_len = wire::MessageBytes(num_resps, resp_bytes);
  RingProducer::Reservation resv;
  uint64_t stalls = 0;
  while (!lane.resp_producer.Reserve(msg_len, &resv)) {
    if (lane.failed) {
      // The client stopped consuming because it is gone, not slow. Drop the
      // responses; its RPCs recover (or fail) through their own timeouts.
      server.stats.responses_dropped += 1;
      co_return;
    }
    // A stuck ring with faults armed may mean the client silently died.
    // Periodically re-post the control slot *signaled*: a dead QP answers
    // with an error completion, which quarantines the lane and ends this
    // stall. (Gated on armed() so fault-free traces see no extra posts.)
    if (env.cluster->fault().armed() && (++stalls & 63) == 0) {
      WriteCtrlSlot(env, lane, server.stats, /*signaled=*/true);
      if (lane.failed) {
        server.stats.responses_dropped += 1;
        co_return;
      }
    }
    co_await sim::Delay(env.sim(), kMicrosecond);
    std::memcpy(&slot_value, lane.head_slot_ptr, 4);
    lane.resp_producer.OnHeadUpdate(slot_value);
  }

  // Encode the coalesced response; piggyback the request-ring head and any
  // pending credit grant (§4.3, §5.1).
  const uint64_t canary = SplitMix64(*env.rng_state);
  wire::MessageEncoder encoder(lane.staging + resv.offset, msg_len, canary);
  for (uint32_t i = 0; i < num_resps; ++i) {
    encoder.Add(scratch.resp[i].meta, scratch.data.data() + scratch.resp[i].offset);
  }
  const uint32_t total =
      encoder.Seal(lane.req_consumer->consumed_report(), /*credit_grant=*/0);
  FLOCK_CHECK_EQ(total, msg_len);
  if (seg_on) {
    lane.seg_bytes_since_report = 0;  // the piggyback head carried the report
  }
  co_await core.Work(cost.cpu_msg_fixed +
                     static_cast<Nanos>(num_resps) * cost.cpu_msg_per_req +
                     cost.MemcpyCost(resp_bytes));

  verbs::SendWr wrs[2];
  size_t nwrs = 0;
  if (resv.wrapped) {
    wire::EncodeWrapMarker(lane.staging + resv.marker_offset, canary);
    verbs::SendWr marker;
    marker.wr_id = TagWrId(WrTag::kServerWrite, &lane);
    marker.opcode = verbs::Opcode::kWrite;
    marker.local_addr = lane.staging_addr + resv.marker_offset;
    marker.length = wire::kWrapMarkerBytes;
    marker.remote_addr = lane.remote_ring_addr + resv.marker_offset;
    marker.rkey = lane.remote_ring_rkey;
    marker.signaled = false;
    wrs[nwrs++] = marker;
  }
  verbs::SendWr msg;
  msg.wr_id = TagWrId(WrTag::kServerWrite, &lane);
  msg.opcode = verbs::Opcode::kWrite;
  msg.local_addr = lane.staging_addr + resv.offset;
  msg.length = msg_len;
  msg.remote_addr = lane.remote_ring_addr + resv.offset;
  msg.rkey = lane.remote_ring_rkey;
  lane.posts += 1;
  msg.signaled = (lane.posts % config.signal_interval) == 0;
  wrs[nwrs++] = msg;

  co_await core.Work(static_cast<Nanos>(nwrs) * cost.cpu_wqe_prep +
                     cost.cpu_mmio_doorbell);
  const verbs::WcStatus status = env.transport->PostBatch(*lane.qp, wrs, nwrs);
  if (status != verbs::WcStatus::kSuccess) {
    QuarantineServerLane(lane, server.stats);
    server.stats.responses_dropped += 1;
    co_return;
  }
  server.stats.responses_sent += 1;
}

sim::Proc ResponseDispatcher(NodeEnv& env, ClientState& client,
                             ServerStats& server_stats, int index) {
  // Dispatchers occupy the top cores of the node (the paper dedicates a
  // lightweight dispatcher thread that serves many QPs).
  sim::Core& core = env.cpu().core(env.cpu().num_cores() - 1 - index);
  const sim::CostModel& cost = env.cost();
  const FlockConfig& config = *env.config;
  // Per-proc decode scratch: capacity persists across messages.
  std::vector<wire::ReqView> views;

  verbs::Completion wcs[kCqPollBatch];
  for (;;) {
    Nanos pass_cost = cost.cpu_cq_poll_empty;
    // Vectorized send-CQ drain (selective signaling keeps this sparse, but
    // error bursts — a flushed QP — arrive as whole batches).
    for (size_t nc;
         (nc = env.transport->PollBatch(*env.send_cq, wcs, kCqPollBatch)) > 0;) {
      for (size_t ci = 0; ci < nc; ++ci) {
        const verbs::Completion& wc = wcs[ci];
        pass_cost += cost.cpu_cqe_handle;
        if (WrIdTag(wc.wr_id) == WrTag::kMemOp) {
          auto* op = WrIdPtr<PendingMemOp>(wc.wr_id);
          op->status = wc.status;
          op->done_event.Fire(env.sim());
        } else if (wc.status != verbs::WcStatus::kSuccess) {
          HandleSendError(wc, server_stats);
        }
      }
      if (nc < kCqPollBatch) {
        break;
      }
    }

    // Index-based on purpose: CloseConnection erases closed connections from
    // client.conns between events, and the co_awaits below suspend mid-pass —
    // an iterator would dangle. Same visitation order as iterators, so the
    // trace of a run that never closes a connection is unchanged.
    for (size_t ci = 0; ci < client.conns.size(); ++ci) {
      ClientConnState* conn = client.conns[ci];
      // With segmentation on, each pass visits the lanes twice: sweep 0
      // serves plain responses, sweep 1 the chunk trains. A per-chunk
      // reassembly memcpy is an order of magnitude more dispatcher work than
      // a small completion, and Algorithm 1 segregates the classes onto
      // different lanes, so draining the plain lanes first keeps bulk
      // reassembly out of the metadata tail (the header flag word makes the
      // classification a header peek, not a decode). Flags-off runs keep the
      // single sweep — and their exact event trace.
      const int sweeps = config.segment_threshold > 0 ? 2 : 1;
      for (int sweep = 0; sweep < sweeps; ++sweep) {
      for (size_t li = index; li < conn->lanes.size();
           li += static_cast<size_t>(config.response_dispatchers)) {
        ClientLane& lane = *conn->lanes[li];
        if (lane.qp == nullptr) {
          continue;  // harvested at close: nothing to poll, no QP to post on
        }
        wire::MsgHeader header;
        if (sweep == 0) {
          pass_cost += cost.cpu_ring_poll_empty;
          ApplyCtrlSlot(env, lane);  // grants / activation from the server
          if (lane.resp_consumer->Probe(&header) != wire::ProbeResult::kMessage) {
            continue;
          }
          if (sweeps == 2 && (header.flags & wire::kFlagSegment) != 0) {
            continue;  // defer chunk reassembly to sweep 1
          }
        } else {
          // Revisit of a lane deferred above. The header peek was paid for in
          // sweep 0 (only this dispatcher consumes the ring, so it is still
          // the head message) — no second poll charge. Lanes served or empty
          // in sweep 0 fall through the flag test untouched.
          if (lane.resp_consumer->Probe(&header) != wire::ProbeResult::kMessage ||
              (header.flags & wire::kFlagSegment) == 0) {
            continue;
          }
        }
        // Fence the control plane: the reconnect daemon must not resync this
        // lane's rings between the probe above and the consume below.
        lane.in_dispatch = true;
        co_await core.Work(pass_cost);
        pass_cost = 0;

        // Piggybacked request-ring head.
        lane.req_producer.OnHeadUpdate(header.piggyback_head);
        if (config.segment_threshold > 0) {
          // Track the full 32-bit cumulative so ApplyCtrlSlot can expand the
          // 24-bit control-slot reports against a recent base. Same staleness
          // rule as OnHeadUpdate: an implausibly large jump is an old report.
          const uint32_t adv = header.piggyback_head - lane.seg_req_consumed;
          if (adv != 0 && adv <= config.ring_bytes) {
            lane.seg_req_consumed = header.piggyback_head;
          }
        }
        lane.send_ready.NotifyAll();

        const uint32_t n = header.num_reqs;
        views.resize(n);
        FLOCK_CHECK(
            wire::DecodeRequests(lane.resp_consumer->MessagePtr(), header, views.data()));
        Nanos work = cost.cpu_msg_fixed + static_cast<Nanos>(n) * cost.cpu_msg_per_req;
        uint32_t matched = 0;
        for (uint32_t i = 0; i < n; ++i) {
          const wire::ReqView& resp = views[i];
          const wire::SegMark mark = wire::SegOf(resp.meta.data_len);
          const uint32_t len = wire::SegLen(resp.meta.data_len);
          if (mark != wire::SegMark::kNone) {
            // Segmented response chunk: accumulate on the pending RPC; it
            // stays in the map until the final chunk lands.
            PendingRpc* rpc = resp.meta.thread_id < conn->pending.size()
                                  ? conn->pending[resp.meta.thread_id].Find(
                                        resp.meta.seq)
                                  : nullptr;
            if (rpc == nullptr) {
              client.stats.spurious_responses += 1;
              continue;
            }
            if (mark == wire::SegMark::kFirst) {
              rpc->resp_assembled = 0;
              rpc->resp_src = &lane;  // this train's arrival lane
              rpc->response.clear();
            } else if (rpc->resp_src != &lane) {
              // Mid-train chunk from another lane: a duplicate train from a
              // pre-retry incarnation. Per-lane delivery is FIFO, so only
              // the adopted lane's train accumulates.
              client.stats.spurious_responses += 1;
              continue;
            }
            if (rpc->response_dst != nullptr) {
              const uint32_t room =
                  rpc->response_cap > rpc->resp_assembled
                      ? rpc->response_cap - rpc->resp_assembled
                      : 0;
              std::memcpy(rpc->response_dst + rpc->resp_assembled, resp.data,
                          std::min(len, room));
            } else {
              rpc->response.Append(resp.data, len);
            }
            rpc->resp_assembled += len;
            work += cost.MemcpyCost(len);
            if (mark != wire::SegMark::kLast) {
              continue;
            }
            conn->pending[resp.meta.thread_id].Take(resp.meta.seq);
            rpc->response_len =
                rpc->response_dst != nullptr
                    ? std::min(rpc->resp_assembled, rpc->response_cap)
                    : rpc->resp_assembled;
            rpc->ok = true;
            rpc->deadline = 0;
            rpc->completed_at = env.sim().Now();
            rpc->done_event.Fire(env.sim());
            client.threads[resp.meta.thread_id]->outstanding -= 1;
            ++matched;
            continue;
          }
          PendingRpc* rpc = resp.meta.thread_id < conn->pending.size()
                                ? conn->pending[resp.meta.thread_id].Take(
                                      resp.meta.seq)
                                : nullptr;
          if (rpc == nullptr) {
            // A retransmitted request can yield two responses (at-least-once
            // under retry); the second finds nothing outstanding.
            client.stats.spurious_responses += 1;
            continue;
          }
          if (rpc->response_dst != nullptr) {
            rpc->response_len = std::min(len, rpc->response_cap);
            std::memcpy(rpc->response_dst, resp.data, rpc->response_len);
          } else {
            rpc->response.Assign(resp.data, resp.meta.data_len);
            rpc->response_len = resp.meta.data_len;
          }
          work += cost.MemcpyCost(resp.meta.data_len);
          rpc->ok = true;
          rpc->deadline = 0;
          rpc->completed_at = env.sim().Now();
          rpc->done_event.Fire(env.sim());
          FlockThread& thread = *client.threads[resp.meta.thread_id];
          thread.outstanding -= 1;
          ++matched;
        }
        // Clamped: watchdog retries move in-flight accounting between lanes,
        // so under failures the per-lane counter is advisory, not exact.
        lane.inflight -= std::min<uint64_t>(lane.inflight, matched);
        work += cost.MemcpyCost(header.total_len);  // zero the consumed region
        lane.resp_consumer->Consume(header);

        // Keep the server's view of this response ring fresh even when no
        // request traffic carries a piggyback: RDMA-write the cumulative
        // consumed count into the server-side head slot.
        lane.resp_bytes_since_send += header.total_len;
        if (lane.resp_bytes_since_send >= config.ring_bytes / 4) {
          const uint32_t report = lane.resp_consumer->consumed_report();
          std::memcpy(lane.head_src_ptr, &report, 4);
          verbs::SendWr slot_wr;
          slot_wr.wr_id = TagWrId(WrTag::kCtrl, &lane);
          slot_wr.opcode = verbs::Opcode::kWrite;
          slot_wr.local_addr = lane.head_src_addr;
          slot_wr.length = 4;
          slot_wr.remote_addr = lane.head_slot_remote_addr;
          slot_wr.rkey = lane.head_slot_rkey;
          slot_wr.signaled = false;
          if (env.transport->Post(*lane.qp, slot_wr) != verbs::WcStatus::kSuccess) {
            QuarantineLane(*conn, lane);
          }
          work += cost.cpu_wqe_prep + cost.cpu_mmio_doorbell;
          lane.resp_bytes_since_send = 0;
        }
        co_await core.Work(work);
        lane.in_dispatch = false;
      }
      }
    }
    co_await core.Work(pass_cost > 0 ? pass_cost : cost.cpu_cq_poll_empty);
  }
}

}  // namespace internal
}  // namespace flock
