#include "src/index/hydralist.h"

#include <algorithm>

#include "src/common/logging.h"

namespace flock::index {

HydraList::HydraList(uint64_t seed) : rng_(seed) {
  // Sentinel data node anchored at 0 so every key has an owner.
  data_head_ = new DataNode();
  data_head_->anchor = 0;
  head_ = new SkipNode();
  head_->key = 0;
  head_->data = data_head_;
  head_->forward.assign(kMaxLevel, nullptr);
}

HydraList::~HydraList() {
  DataNode* node = data_head_;
  while (node != nullptr) {
    DataNode* next = node->next;
    delete node;
    node = next;
  }
  SkipNode* snode = head_;
  while (snode != nullptr) {
    SkipNode* next = snode->forward[0];
    delete snode;
    snode = next;
  }
}

int HydraList::RandomLevel() {
  int level = 1;
  while (level < kMaxLevel && (rng_.Next() & 3) == 0) {
    ++level;  // p = 1/4
  }
  return level;
}

HydraList::DataNode* HydraList::SearchLayerLocate(uint64_t key, Nanos* cpu) const {
  const SkipNode* current = head_;
  for (int lvl = level_ - 1; lvl >= 0; --lvl) {
    while (current->forward[static_cast<size_t>(lvl)] != nullptr &&
           current->forward[static_cast<size_t>(lvl)]->key <= key) {
      current = current->forward[static_cast<size_t>(lvl)];
      *cpu += kHopCost;
    }
    *cpu += kHopCost;
  }
  return current->data;
}

HydraList::DataNode* HydraList::WalkToOwner(DataNode* node, uint64_t key,
                                            Nanos* cpu) const {
  // The search layer may lag behind splits; the data list is authoritative.
  while (node->next != nullptr && node->next->anchor <= key) {
    node = node->next;
    *cpu += kHopCost;
  }
  return node;
}

bool HydraList::Get(uint64_t key, uint64_t* value, Nanos* cpu) const {
  DataNode* node = WalkToOwner(SearchLayerLocate(key, cpu), key, cpu);
  *cpu += kSearchCost;
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) {
    return false;
  }
  if (value != nullptr) {
    *value = node->values[static_cast<size_t>(it - node->keys.begin())];
  }
  return true;
}

bool HydraList::Insert(uint64_t key, uint64_t value, Nanos* cpu) {
  DataNode* node = WalkToOwner(SearchLayerLocate(key, cpu), key, cpu);
  *cpu += kSearchCost;
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  const size_t pos = static_cast<size_t>(it - node->keys.begin());
  if (it != node->keys.end() && *it == key) {
    node->values[pos] = value;  // upsert
    return false;
  }
  node->keys.insert(it, key);
  node->values.insert(node->values.begin() + static_cast<ptrdiff_t>(pos), value);
  ++size_;
  *cpu += kInsertCost;

  if (node->keys.size() > kMaxEntries) {
    // Split: move the upper half into a new node; publish it in the data
    // list now, in the search layer asynchronously.
    const size_t half = node->keys.size() / 2;
    auto* fresh = new DataNode();
    fresh->anchor = node->keys[half];
    fresh->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(half),
                       node->keys.end());
    fresh->values.assign(node->values.begin() + static_cast<ptrdiff_t>(half),
                         node->values.end());
    node->keys.resize(half);
    node->values.resize(half);
    fresh->next = node->next;
    fresh->prev = node;
    if (fresh->next != nullptr) {
      fresh->next->prev = fresh;
    }
    node->next = fresh;
    ++data_nodes_;
    pending_anchors_.push_back(fresh);
    *cpu += kSplitCost;
  }
  return true;
}

bool HydraList::Remove(uint64_t key, Nanos* cpu) {
  DataNode* node = WalkToOwner(SearchLayerLocate(key, cpu), key, cpu);
  *cpu += kSearchCost;
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) {
    return false;
  }
  const size_t pos = static_cast<size_t>(it - node->keys.begin());
  node->keys.erase(it);
  node->values.erase(node->values.begin() + static_cast<ptrdiff_t>(pos));
  --size_;
  *cpu += kInsertCost;
  return true;
}

uint32_t HydraList::Scan(uint64_t start, uint32_t count, uint64_t* digest,
                         Nanos* cpu) const {
  DataNode* node = WalkToOwner(SearchLayerLocate(start, cpu), start, cpu);
  *cpu += kSearchCost;
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), start);
  size_t pos = static_cast<size_t>(it - node->keys.begin());
  uint32_t found = 0;
  uint64_t fold = 0;
  while (found < count && node != nullptr) {
    if (pos >= node->keys.size()) {
      node = node->next;
      pos = 0;
      *cpu += kHopCost;
      continue;
    }
    fold ^= node->values[pos];
    ++pos;
    ++found;
    *cpu += kEntryCost;
  }
  if (digest != nullptr) {
    *digest = fold;
  }
  return found;
}

void HydraList::VisitNodes(
    const std::function<void(uint64_t anchor, const uint64_t* keys,
                             const uint64_t* values, size_t count)>& fn) const {
  for (const DataNode* node = data_head_; node != nullptr; node = node->next) {
    fn(node->anchor, node->keys.data(), node->values.data(), node->keys.size());
  }
}

size_t HydraList::DrainSearchUpdates(size_t max) {
  size_t applied = 0;
  while (applied < max && !pending_anchors_.empty()) {
    DataNode* node = pending_anchors_.front();
    pending_anchors_.pop_front();
    SkipInsert(node->anchor, node);
    ++applied;
  }
  return applied;
}

void HydraList::SkipInsert(uint64_t key, DataNode* data) {
  std::vector<SkipNode*> update(kMaxLevel, nullptr);
  SkipNode* current = head_;
  for (int lvl = level_ - 1; lvl >= 0; --lvl) {
    while (current->forward[static_cast<size_t>(lvl)] != nullptr &&
           current->forward[static_cast<size_t>(lvl)]->key < key) {
      current = current->forward[static_cast<size_t>(lvl)];
    }
    update[static_cast<size_t>(lvl)] = current;
  }
  SkipNode* next = current->forward[0];
  if (next != nullptr && next->key == key) {
    next->data = data;  // anchor re-published after node reuse
    return;
  }
  const int node_level = RandomLevel();
  if (node_level > level_) {
    for (int lvl = level_; lvl < node_level; ++lvl) {
      update[static_cast<size_t>(lvl)] = head_;
    }
    level_ = node_level;
  }
  auto* fresh = new SkipNode();
  fresh->key = key;
  fresh->data = data;
  fresh->forward.assign(static_cast<size_t>(node_level), nullptr);
  for (int lvl = 0; lvl < node_level; ++lvl) {
    fresh->forward[static_cast<size_t>(lvl)] =
        update[static_cast<size_t>(lvl)]->forward[static_cast<size_t>(lvl)];
    update[static_cast<size_t>(lvl)]->forward[static_cast<size_t>(lvl)] = fresh;
  }
}

}  // namespace flock::index
