// One-sided fast path for HydraList lookups (§8.6 + the fl_read data plane).
//
// The index itself lives on the server heap; RDMA cannot chase its pointers.
// Instead the server periodically *publishes* a flat mirror of the data list
// into registered memory, and clients resolve point lookups against the
// mirror with two fl_reads — no server CPU:
//
//   directory: [version | count | {anchor, block_addr} x count]   (seqlock)
//   block i:   [version | count | keys[64] | values[64]]          (seqlock)
//
// A client binary-searches its (host-cached) directory copy for the greatest
// anchor <= key, fl_reads that 1040-byte block, searches it locally, and
// re-reads the block's version word to validate the snapshot — the same
// seqlock discipline as kv::OneSidedReader. A locked/odd version, a version
// that moved between the reads, or a key that is absent from the snapshot
// all send the caller to the RPC path, which consults the authoritative
// index (and is also how mutations travel).
//
// Staleness model: the mirror is a snapshot — reads are as fresh as the last
// Publish(). That mirrors HydraList's own design, where the search layer
// lags the data list; here the whole read path may lag mutations by one
// publication period, but a validated block is internally consistent (never
// torn), so readers see some value that was genuinely current at a publish.
#ifndef FLOCK_INDEX_REMOTE_MIRROR_H_
#define FLOCK_INDEX_REMOTE_MIRROR_H_

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/fabric/memory.h"
#include "src/flock/runtime.h"
#include "src/index/hydralist.h"

namespace flock::index {

// Shared layout constants.
struct MirrorLayout {
  static constexpr size_t kBlockEntries = HydraList::kMaxEntries;  // 64
  // [version(8) | count(8) | keys | values]
  static constexpr size_t kBlockBytes = 16 + kBlockEntries * 16;  // 1040
  static constexpr size_t kDirEntryBytes = 16;  // {anchor, block_addr}

  static constexpr uint64_t DirBytes(size_t max_blocks) {
    return 16 + max_blocks * kDirEntryBytes;
  }
};

// Server side: owns the mirror region and republishes snapshots into it.
class HydraMirror {
 public:
  // Blocks are allocated one by one (a single slab would exceed the memory
  // space's chunk limit for large indexes); the directory carries each
  // block's address, so only the covering MR needs the full [first, last]
  // span. The directory itself must fit one chunk: max_blocks < ~260k.
  HydraMirror(fabric::MemorySpace& mem, size_t max_blocks)
      : mem_(&mem),
        max_blocks_(max_blocks),
        dir_addr_(mem.Alloc(MirrorLayout::DirBytes(max_blocks), 8)) {
    block_addrs_.reserve(max_blocks);
    const uint64_t zero = 0;
    // Start every seqlock word even (0 = "empty snapshot, valid").
    mem.Write(dir_addr_, &zero, 8);
    mem.Write(dir_addr_ + 8, &zero, 8);
    for (size_t b = 0; b < max_blocks; ++b) {
      block_addrs_.push_back(mem.Alloc(MirrorLayout::kBlockBytes, 8));
      mem.Write(block_addrs_.back(), &zero, 8);
      mem.Write(block_addrs_.back() + 8, &zero, 8);
    }
  }

  // Snapshots `index` into the mirror. Each touched block and the directory
  // go through an odd-version window so concurrent one-sided readers reject
  // the intermediate state. Returns the number of blocks published; nodes
  // beyond capacity are dropped (their keys simply miss and fall back to
  // RPC), so size the mirror for the expected node count.
  size_t Publish(const HydraList& index) {
    size_t block = 0;
    std::vector<std::pair<uint64_t, uint64_t>> dir;
    index.VisitNodes([&](uint64_t anchor, const uint64_t* keys,
                         const uint64_t* values, size_t count) {
      if (block >= max_blocks_) {
        dropped_ += 1;
        return;
      }
      const uint64_t addr = BlockAddr(block);
      uint64_t version = 0;
      mem_->Read(addr, &version, 8);
      const uint64_t locked = version + 1;  // odd: mid-publish
      mem_->Write(addr, &locked, 8);
      const uint64_t n = count;
      mem_->Write(addr + 8, &n, 8);
      mem_->Write(addr + 16, keys, count * 8);
      mem_->Write(addr + 16 + MirrorLayout::kBlockEntries * 8, values,
                  count * 8);
      const uint64_t published = version + 2;  // even: stable
      mem_->Write(addr, &published, 8);
      dir.emplace_back(anchor, addr);
      ++block;
    });
    // Directory flip under its own seqlock.
    uint64_t dir_version = 0;
    mem_->Read(dir_addr_, &dir_version, 8);
    const uint64_t locked = dir_version + 1;
    mem_->Write(dir_addr_, &locked, 8);
    const uint64_t n = dir.size();
    mem_->Write(dir_addr_ + 8, &n, 8);
    for (size_t i = 0; i < dir.size(); ++i) {
      const uint64_t entry_addr =
          dir_addr_ + 16 + i * MirrorLayout::kDirEntryBytes;
      mem_->Write(entry_addr, &dir[i].first, 8);
      mem_->Write(entry_addr + 8, &dir[i].second, 8);
    }
    const uint64_t published = dir_version + 2;
    mem_->Write(dir_addr_, &published, 8);
    return block;
  }

  uint64_t dir_addr() const { return dir_addr_; }
  uint64_t dir_bytes() const { return MirrorLayout::DirBytes(max_blocks_); }
  uint64_t blocks_addr() const { return block_addrs_.front(); }
  uint64_t blocks_bytes() const {
    return block_addrs_.back() + MirrorLayout::kBlockBytes -
           block_addrs_.front();
  }
  size_t max_blocks() const { return max_blocks_; }
  uint64_t dropped() const { return dropped_; }

  // Host-side copy of the published directory — a setup-time bootstrap for
  // co-located tooling and benches (MirrorReader::AdoptDirectory), standing
  // in for the one fl_read of RefreshDirectory that a real client would do.
  std::vector<std::pair<uint64_t, uint64_t>> DirectorySnapshot() const {
    uint64_t count = 0;
    mem_->Read(dir_addr_ + 8, &count, 8);
    std::vector<std::pair<uint64_t, uint64_t>> dir(count);
    for (size_t i = 0; i < count; ++i) {
      const uint64_t entry = dir_addr_ + 16 + i * MirrorLayout::kDirEntryBytes;
      mem_->Read(entry, &dir[i].first, 8);
      mem_->Read(entry + 8, &dir[i].second, 8);
    }
    return dir;
  }

 private:
  uint64_t BlockAddr(size_t block) const { return block_addrs_[block]; }

  fabric::MemorySpace* mem_;
  const size_t max_blocks_;
  const uint64_t dir_addr_;
  std::vector<uint64_t> block_addrs_;
  uint64_t dropped_ = 0;  // nodes beyond capacity at the last Publish
};

// Client side: one per (connection, application thread) — the scratch
// buffers are not re-entrant.
class MirrorReader {
 public:
  enum class Outcome {
    kOk,       // value delivered from a validated snapshot
    kAbsent,   // key not in the snapshot: confirm through RPC
    kStale,    // retries exhausted against the publisher: use RPC
    kError,    // transport failure
  };

  struct Stats {
    uint64_t ok = 0;
    uint64_t absent = 0;
    uint64_t stale = 0;
    uint64_t errors = 0;
    uint64_t retries = 0;  // odd/changed block versions observed
    uint64_t dir_refreshes = 0;
  };

  MirrorReader(Connection& conn, fabric::MemorySpace& local_mem,
               uint64_t dir_addr, const RemoteMr& dir_mr,
               const RemoteMr& blocks_mr, size_t max_blocks)
      : conn_(&conn),
        local_mem_(&local_mem),
        dir_addr_(dir_addr),
        dir_mr_(dir_mr),
        blocks_mr_(blocks_mr),
        block_scratch_(local_mem.Alloc(MirrorLayout::kBlockBytes, 8)),
        max_blocks_(max_blocks) {}

  // Installs a directory obtained elsewhere — from another reader on this
  // node or from HydraMirror::DirectorySnapshot() at setup — so fleets of
  // readers don't each pay the multi-megabyte directory read and its scratch.
  void AdoptDirectory(std::vector<std::pair<uint64_t, uint64_t>> dir) {
    directory_ = std::move(dir);
  }
  const std::vector<std::pair<uint64_t, uint64_t>>& directory() const {
    return directory_;
  }

  // fl_reads the whole directory under its seqlock and caches it host-side
  // for binary search. Call after connect and then at whatever staleness
  // budget the application tolerates.
  sim::Co<bool> RefreshDirectory(FlockThread& thread, int max_retries = 3) {
    if (dir_scratch_ == 0) {
      // Lazily allocated: adopted-directory readers never need this buffer.
      dir_scratch_ = local_mem_->Alloc(MirrorLayout::DirBytes(max_blocks_), 8);
    }
    for (int attempt = 0; attempt <= max_retries; ++attempt) {
      if (co_await conn_->Read(thread, dir_scratch_, dir_addr_,
                               static_cast<uint32_t>(
                                   MirrorLayout::DirBytes(max_blocks_)),
                               dir_mr_) != verbs::WcStatus::kSuccess) {
        stats_.errors += 1;
        co_return false;
      }
      uint64_t v1 = 0;
      local_mem_->Read(dir_scratch_, &v1, 8);
      if (v1 & 1) {
        stats_.retries += 1;
        continue;
      }
      uint64_t count = 0;
      local_mem_->Read(dir_scratch_ + 8, &count, 8);
      if (count > max_blocks_) {
        co_return false;  // corrupt snapshot; keep the previous directory
      }
      std::vector<std::pair<uint64_t, uint64_t>> dir(count);
      for (size_t i = 0; i < count; ++i) {
        const uint64_t entry =
            dir_scratch_ + 16 + i * MirrorLayout::kDirEntryBytes;
        local_mem_->Read(entry, &dir[i].first, 8);
        local_mem_->Read(entry + 8, &dir[i].second, 8);
      }
      if (co_await conn_->Read(thread, dir_scratch_, dir_addr_, 8, dir_mr_) !=
          verbs::WcStatus::kSuccess) {
        stats_.errors += 1;
        co_return false;
      }
      uint64_t v2 = 0;
      local_mem_->Read(dir_scratch_, &v2, 8);
      if (v2 != v1) {
        stats_.retries += 1;
        continue;
      }
      directory_ = std::move(dir);
      stats_.dir_refreshes += 1;
      co_return true;
    }
    co_return false;
  }

  bool has_directory() const { return !directory_.empty(); }

  // One-sided point lookup against the mirror snapshot.
  sim::Co<Outcome> Get(FlockThread& thread, uint64_t key, uint64_t* value_out,
                       int max_retries = 3) {
    if (directory_.empty()) {
      stats_.stale += 1;
      co_return Outcome::kStale;
    }
    // Greatest anchor <= key; directory is sorted by anchor (data-list
    // order). Charged as one node binary search, like the server would pay.
    co_await thread.core().Work(HydraList::kSearchCost);
    size_t lo = 0;
    size_t hi = directory_.size();
    while (hi - lo > 1) {
      const size_t mid = lo + (hi - lo) / 2;
      if (directory_[mid].first <= key) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const uint64_t block_addr = directory_[lo].second;
    for (int attempt = 0; attempt <= max_retries; ++attempt) {
      if (co_await conn_->Read(thread, block_scratch_, block_addr,
                               MirrorLayout::kBlockBytes, blocks_mr_) !=
          verbs::WcStatus::kSuccess) {
        stats_.errors += 1;
        co_return Outcome::kError;
      }
      uint64_t v1 = 0;
      local_mem_->Read(block_scratch_, &v1, 8);
      if (v1 & 1) {
        stats_.retries += 1;
        continue;  // publisher mid-flip
      }
      uint64_t count = 0;
      local_mem_->Read(block_scratch_ + 8, &count, 8);
      if (count > MirrorLayout::kBlockEntries) {
        stats_.stale += 1;
        co_return Outcome::kStale;  // snapshot from before our directory
      }
      uint64_t keys[MirrorLayout::kBlockEntries];
      local_mem_->Read(block_scratch_ + 16, keys, count * 8);
      uint64_t value = 0;
      bool found = false;
      co_await thread.core().Work(HydraList::kSearchCost);
      size_t klo = 0;
      size_t khi = count;
      while (klo < khi) {
        const size_t mid = klo + (khi - klo) / 2;
        if (keys[mid] < key) {
          klo = mid + 1;
        } else {
          khi = mid;
        }
      }
      if (klo < count && keys[klo] == key) {
        local_mem_->Read(
            block_scratch_ + 16 + MirrorLayout::kBlockEntries * 8 + klo * 8,
            &value, 8);
        found = true;
      }
      // Seqlock validation: the block must not have been republished.
      if (co_await conn_->Read(thread, block_scratch_, block_addr, 8,
                               blocks_mr_) != verbs::WcStatus::kSuccess) {
        stats_.errors += 1;
        co_return Outcome::kError;
      }
      uint64_t v2 = 0;
      local_mem_->Read(block_scratch_, &v2, 8);
      if (v2 != v1) {
        stats_.retries += 1;
        continue;
      }
      if (!found) {
        stats_.absent += 1;
        co_return Outcome::kAbsent;
      }
      if (value_out != nullptr) {
        *value_out = value;
      }
      stats_.ok += 1;
      co_return Outcome::kOk;
    }
    stats_.stale += 1;
    co_return Outcome::kStale;
  }

  const Stats& stats() const { return stats_; }

 private:
  Connection* conn_;
  fabric::MemorySpace* local_mem_;
  const uint64_t dir_addr_;
  const RemoteMr dir_mr_;
  const RemoteMr blocks_mr_;
  uint64_t dir_scratch_ = 0;  // lazily allocated by RefreshDirectory
  const uint64_t block_scratch_;
  const size_t max_blocks_;
  std::vector<std::pair<uint64_t, uint64_t>> directory_;  // {anchor, addr}
  Stats stats_;
};

}  // namespace flock::index

#endif  // FLOCK_INDEX_REMOTE_MIRROR_H_
