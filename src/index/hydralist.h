// A HydraList-style in-memory ordered index (§8.6).
//
// HydraList (VLDB '20) splits the index into:
//   * a *data list* — a doubly-linked list of nodes, each holding a sorted
//     array of entries anchored at its smallest key; and
//   * a *search layer* — a skip list over anchors that locates the candidate
//     data node, updated *asynchronously* so structural changes (splits)
//     don't stall readers.
//
// Lookups tolerate a stale search layer by walking forward from the located
// node. Every operation reports the simulated CPU it consumed (skip-list
// hops, binary searches, entry copies), which the RPC handlers charge on the
// server cores.
#ifndef FLOCK_INDEX_HYDRALIST_H_
#define FLOCK_INDEX_HYDRALIST_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/rand.h"
#include "src/common/units.h"

namespace flock::index {

class HydraList {
 public:
  static constexpr size_t kMaxEntries = 64;

  // Per-step CPU costs (ns) used to compute handler charges.
  static constexpr Nanos kHopCost = 15;       // one skip-list / list hop
  static constexpr Nanos kSearchCost = 25;    // binary search within a node
  static constexpr Nanos kEntryCost = 4;      // touch one entry during a scan
  static constexpr Nanos kInsertCost = 45;    // shift + insert in the array
  static constexpr Nanos kSplitCost = 400;    // allocate + move half the node

  explicit HydraList(uint64_t seed = 0x9e3779b9);
  ~HydraList();

  HydraList(const HydraList&) = delete;
  HydraList& operator=(const HydraList&) = delete;

  // Point operations. `cpu` is incremented by the operation's simulated cost.
  bool Insert(uint64_t key, uint64_t value, Nanos* cpu);
  bool Get(uint64_t key, uint64_t* value, Nanos* cpu) const;
  bool Remove(uint64_t key, Nanos* cpu);
  // Range scan: up to `count` entries with key >= start; returns the number
  // found and XOR-folds their values into *digest (the benches reply with the
  // count, as the paper's scan does).
  uint32_t Scan(uint64_t start, uint32_t count, uint64_t* digest, Nanos* cpu) const;

  // Const iteration over the data list in anchor order — the publication
  // walk for the one-sided mirror (remote_mirror.h). The callback sees each
  // node's anchor and its parallel key/value arrays.
  void VisitNodes(const std::function<void(uint64_t anchor, const uint64_t* keys,
                                           const uint64_t* values, size_t count)>&
                      fn) const;

  // Asynchronous search-layer maintenance: splits queue anchor insertions;
  // a background task applies up to `max` of them. Returns applied count.
  size_t DrainSearchUpdates(size_t max);
  size_t pending_search_updates() const { return pending_anchors_.size(); }

  size_t size() const { return size_; }
  size_t data_nodes() const { return data_nodes_; }

 private:
  struct DataNode {
    uint64_t anchor = 0;
    std::vector<uint64_t> keys;
    std::vector<uint64_t> values;
    DataNode* next = nullptr;
    DataNode* prev = nullptr;
  };

  static constexpr int kMaxLevel = 24;

  struct SkipNode {
    uint64_t key = 0;
    DataNode* data = nullptr;
    std::vector<SkipNode*> forward;
  };

  // Search layer: returns the data node whose anchor is the greatest <= key
  // (per the possibly-stale search layer); counts hops.
  DataNode* SearchLayerLocate(uint64_t key, Nanos* cpu) const;
  // Walk forward from the (possibly stale) candidate to the true owner.
  DataNode* WalkToOwner(DataNode* node, uint64_t key, Nanos* cpu) const;
  void SkipInsert(uint64_t key, DataNode* data);
  int RandomLevel();

  SkipNode* head_;
  int level_ = 1;
  DataNode* data_head_;
  std::deque<DataNode*> pending_anchors_;
  size_t size_ = 0;
  size_t data_nodes_ = 1;
  Rng rng_;
};

}  // namespace flock::index

#endif  // FLOCK_INDEX_HYDRALIST_H_
