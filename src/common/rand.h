// Deterministic pseudo-random generators for workloads and the simulator.
//
// We deliberately avoid std::mt19937 in hot paths: workload generation runs
// once per simulated operation, so the generator must be a handful of
// instructions. SplitMix64 seeds xoshiro-style state; Zipf uses the
// Gray/Jim-Gray-style approximation used by YCSB.
//
// Sharded-kernel discipline: generators are plain mutable state, so each
// stream must be owned by a single simulated *node* (not shared across nodes,
// and not keyed by shard — a shard-keyed stream would change the draw
// sequence when the shard count changes, breaking trace invariance). The
// runtimes follow this by deriving per-node streams, e.g.
// SplitMix64(seed ^ node_id); workload code that adds a generator must key it
// the same way.
#ifndef FLOCK_COMMON_RAND_H_
#define FLOCK_COMMON_RAND_H_

#include <cmath>
#include <cstdint>

#include "src/common/logging.h"

namespace flock {

// SplitMix64: used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xorshift128+ — fast, good-enough statistical quality for workload draws.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    uint64_t s = seed;
    s0_ = SplitMix64(s);
    s1_ = SplitMix64(s);
    if (s0_ == 0 && s1_ == 0) {
      s1_ = 1;
    }
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, bound).
  uint64_t NextBelow(uint64_t bound) {
    FLOCK_CHECK_GT(bound, 0u);
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    FLOCK_CHECK_LE(lo, hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

// Zipfian generator over [0, n) following the YCSB / Gray et al. rejection-free
// formulation. theta in (0, 1); theta ~ 0.99 is the YCSB default.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 1)
      : rng_(seed), n_(n), theta_(theta) {
    FLOCK_CHECK_GT(n, 0u);
    FLOCK_CHECK_GT(theta, 0.0);
    FLOCK_CHECK_LT(theta, 1.0);
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const double v =
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
    uint64_t item = static_cast<uint64_t>(v);
    if (item >= n_) {
      item = n_ - 1;
    }
    return item;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  Rng rng_;
  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace flock

#endif  // FLOCK_COMMON_RAND_H_
