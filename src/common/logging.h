// Minimal logging and assertion facilities shared by every module.
//
// The simulator is performance sensitive, so logging is compiled around a
// severity threshold: FLOCK_LOG(DEBUG) statements below the threshold cost a
// single branch. CHECK macros are always on — an invariant violation inside a
// discrete-event simulation silently corrupts every downstream result, so we
// prefer a loud abort.
#ifndef FLOCK_COMMON_LOGGING_H_
#define FLOCK_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace flock {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Runtime log threshold; messages below it are dropped. Defaults to kInfo and
// can be raised by benches that sweep many configurations.
LogSeverity GetLogThreshold();
void SetLogThreshold(LogSeverity severity);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows a streamed expression when logging is disabled for the statement.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace flock

#define FLOCK_LOG_IS_ON(severity) \
  (::flock::LogSeverity::k##severity >= ::flock::GetLogThreshold())

#define FLOCK_LOG(severity)                                 \
  !FLOCK_LOG_IS_ON(severity)                                \
      ? (void)0                                             \
      : ::flock::internal::LogMessageVoidify() &            \
            ::flock::internal::LogMessage(                  \
                ::flock::LogSeverity::k##severity, __FILE__, __LINE__) \
                .stream()

#define FLOCK_CHECK(cond)                                                     \
  (cond) ? (void)0                                                            \
         : ::flock::internal::LogMessageVoidify() &                           \
               ::flock::internal::LogMessage(::flock::LogSeverity::kFatal,    \
                                             __FILE__, __LINE__)              \
                   .stream()                                                  \
               << "Check failed: " #cond " "

#define FLOCK_CHECK_OP(op, a, b)                                          \
  ((a)op(b)) ? (void)0                                                    \
             : ::flock::internal::LogMessageVoidify() &                   \
                   ::flock::internal::LogMessage(                         \
                       ::flock::LogSeverity::kFatal, __FILE__, __LINE__)  \
                       .stream()                                          \
                   << "Check failed: " #a " " #op " " #b " (" << (a)      \
                   << " vs " << (b) << ") "

#define FLOCK_CHECK_EQ(a, b) FLOCK_CHECK_OP(==, a, b)
#define FLOCK_CHECK_NE(a, b) FLOCK_CHECK_OP(!=, a, b)
#define FLOCK_CHECK_LT(a, b) FLOCK_CHECK_OP(<, a, b)
#define FLOCK_CHECK_LE(a, b) FLOCK_CHECK_OP(<=, a, b)
#define FLOCK_CHECK_GT(a, b) FLOCK_CHECK_OP(>, a, b)
#define FLOCK_CHECK_GE(a, b) FLOCK_CHECK_OP(>=, a, b)

#endif  // FLOCK_COMMON_LOGGING_H_
