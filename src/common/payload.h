// Scatter-gather payload view (DESIGN.md §16).
//
// A PayloadRef is a tiny iovec: up to kMaxSlices {pointer, length} pairs over
// caller-owned memory. It carries no ownership — the caller's buffers must
// stay valid until the payload has been gathered into the staging ring (the
// submit path blocks the caller until exactly that point, so stack buffers
// are safe). Threading PayloadRef from Runtime::Call down to
// wire::MessageEncoder collapses the old copy chain (caller → PendingSend →
// staging) to a single gather into the staging ring.
//
// Trivially copyable on purpose: PendingSend objects live in a Pool<> and a
// PayloadRef is copied into them by value.
#ifndef FLOCK_COMMON_PAYLOAD_H_
#define FLOCK_COMMON_PAYLOAD_H_

#include <cstdint>
#include <cstring>

#include "src/common/logging.h"

namespace flock {

class PayloadRef {
 public:
  // Two slices cover the common composite case (header + body, e.g. an
  // extent write); four leaves headroom without bloating PendingSend.
  static constexpr uint32_t kMaxSlices = 4;

  struct Slice {
    const uint8_t* data = nullptr;
    uint32_t len = 0;
  };

  PayloadRef() = default;
  PayloadRef(const uint8_t* data, uint32_t len) { Add(data, len); }

  // Appends a slice. Zero-length slices are dropped so num_slices() == 0
  // iff size() == 0.
  void Add(const uint8_t* data, uint32_t len) {
    if (len == 0) {
      return;
    }
    FLOCK_CHECK_LT(num_slices_, kMaxSlices);
    slices_[num_slices_].data = data;
    slices_[num_slices_].len = len;
    ++num_slices_;
    total_ += len;
  }

  uint32_t size() const { return total_; }
  uint32_t num_slices() const { return num_slices_; }
  const Slice& slice(uint32_t i) const {
    FLOCK_CHECK_LT(i, num_slices_);
    return slices_[i];
  }

  // Gathers the whole payload into `dst`, which must hold size() bytes.
  void CopyTo(uint8_t* dst) const {
    for (uint32_t i = 0; i < num_slices_; ++i) {
      std::memcpy(dst, slices_[i].data, slices_[i].len);
      dst += slices_[i].len;
    }
  }

  // View of the byte range [offset, offset + len): cuts an oversized payload
  // into wire chunks without touching the bytes. The result references the
  // same caller memory.
  PayloadRef Sub(uint32_t offset, uint32_t len) const {
    FLOCK_CHECK_LE(uint64_t{offset} + len, uint64_t{total_});
    PayloadRef out;
    for (uint32_t i = 0; i < num_slices_ && len > 0; ++i) {
      const Slice& s = slices_[i];
      if (offset >= s.len) {
        offset -= s.len;
        continue;
      }
      const uint32_t take = s.len - offset < len ? s.len - offset : len;
      out.Add(s.data + offset, take);
      offset = 0;
      len -= take;
    }
    return out;
  }

 private:
  Slice slices_[kMaxSlices] = {};
  uint32_t num_slices_ = 0;
  uint32_t total_ = 0;
};

}  // namespace flock

#endif  // FLOCK_COMMON_PAYLOAD_H_
