#include "src/common/logging.h"

#include <atomic>
#include <cstring>

namespace flock {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogSeverity::kInfo)};

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogSeverity GetLogThreshold() {
  return static_cast<LogSeverity>(g_threshold.load(std::memory_order_relaxed));
}

void SetLogThreshold(LogSeverity severity) {
  g_threshold.store(static_cast<int>(severity), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << SeverityName(severity) << " " << (base ? base + 1 : file)
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (severity_ == LogSeverity::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace flock
