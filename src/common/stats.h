// Small streaming statistics helpers used by the Flock schedulers.
//
// The paper's schedulers consume *medians* (median coalescing degree per
// credit-renew interval, median request size per thread per scheduling
// interval). Intervals are short, so an exact bounded sample window is both
// cheap and faithful: we keep the most recent kWindow observations and take
// the exact median of those.
#ifndef FLOCK_COMMON_STATS_H_
#define FLOCK_COMMON_STATS_H_

#include <algorithm>
#include <array>
#include <cstdint>

namespace flock {

// Exact median over a sliding window of the last kWindow samples. The median
// is computed lazily and cached: schedulers query far more often than the
// window changes, so repeated Median() calls between Record()s are one load.
template <typename T, size_t kWindow = 64>
class WindowedMedian {
 public:
  void Record(T value) {
    window_[next_ % kWindow] = value;
    ++next_;
    cache_valid_ = false;
  }

  size_t count() const { return next_ < kWindow ? next_ : kWindow; }
  bool empty() const { return next_ == 0; }

  // Median of the current window; `fallback` when no samples were recorded.
  T Median(T fallback = T{}) const {
    const size_t n = count();
    if (n == 0) {
      return fallback;
    }
    if (!cache_valid_) {
      std::array<T, kWindow> scratch;
      std::copy(window_.begin(), window_.begin() + n, scratch.begin());
      auto mid = scratch.begin() + n / 2;
      std::nth_element(scratch.begin(), mid, scratch.begin() + n);
      cached_median_ = *mid;
      cache_valid_ = true;
    }
    return cached_median_;
  }

  void Reset() {
    next_ = 0;
    cache_valid_ = false;
  }

 private:
  std::array<T, kWindow> window_{};
  size_t next_ = 0;
  mutable T cached_median_{};
  mutable bool cache_valid_ = false;
};

// Monotonic counters with interval snapshots: Delta() returns the growth since
// the previous Delta() call. Used for per-interval scheduler statistics.
class IntervalCounter {
 public:
  void Add(uint64_t v) { total_ += v; }

  uint64_t total() const { return total_; }

  uint64_t Delta() {
    const uint64_t d = total_ - last_snapshot_;
    last_snapshot_ = total_;
    return d;
  }

  uint64_t PeekDelta() const { return total_ - last_snapshot_; }

 private:
  uint64_t total_ = 0;
  uint64_t last_snapshot_ = 0;
};

}  // namespace flock

#endif  // FLOCK_COMMON_STATS_H_
