// Log-bucketed latency histogram (HdrHistogram-style) used by every bench to
// report median and tail latency in nanoseconds.
//
// Buckets use a 6-bit mantissa per power-of-two range, bounding relative
// quantile error to ~1.6% — far below the run-to-run variance of the
// experiments — while keeping Record() allocation-free and O(1).
#ifndef FLOCK_COMMON_HISTOGRAM_H_
#define FLOCK_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flock {

class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const;
  double Mean() const;

  // Value at quantile q in [0, 1]; returns 0 on an empty histogram.
  int64_t ValueAtQuantile(double q) const;
  int64_t Median() const { return ValueAtQuantile(0.5); }
  int64_t P99() const { return ValueAtQuantile(0.99); }

  // "p50=12.3us p99=45.6us" style one-liner for bench tables.
  std::string Summary() const;

 private:
  static constexpr int kMantissaBits = 6;
  static constexpr int kSubBuckets = 1 << kMantissaBits;
  static constexpr int kRanges = 40;  // covers values up to ~2^40 ns (~18 min)

  static int BucketIndex(int64_t value);
  static int64_t BucketMidpoint(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace flock

#endif  // FLOCK_COMMON_HISTOGRAM_H_
