// Allocation-free hot-path building blocks: a slab-backed object pool with an
// intrusive free list, a small-buffer-optimized byte buffer, and an
// open-addressed sequence-number map.
//
// The Flock data path allocates nothing in steady state (see DESIGN.md
// "Simulator internals & performance"): per-RPC objects come from Pool<T>,
// payloads up to SmallBuf's inline capacity stay inline, and outstanding-RPC
// lookup uses SeqSlotMap instead of a node-based hash map.
#ifndef FLOCK_COMMON_POOL_H_
#define FLOCK_COMMON_POOL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace flock {

// Fixed-type object pool. Objects live in slabs owned by the pool; freed
// objects park on a free list threaded intrusively through the freed slots
// themselves, so New()/Delete() in steady state is a pointer swap plus the
// object's constructor/destructor — no general-purpose allocator traffic.
//
// Delete() checks an in-use marker, so double-frees and frees of pointers
// that never came from a pool slot fail loudly instead of corrupting the
// free list. Objects still outstanding when the pool dies (in-flight
// operations of a simulation stopped mid-workload) are destroyed with it.
template <typename T>
class Pool {
 public:
  explicit Pool(size_t slab_objects = 64) : slab_objects_(slab_objects) {
    FLOCK_CHECK_GT(slab_objects_, 0u);
  }

  ~Pool() {
    for (auto& slab : slabs_) {
      for (size_t i = 0; i < slab_objects_; ++i) {
        if (slab[i].next == InUseMarker()) {
          reinterpret_cast<T*>(slab[i].storage)->~T();
        }
      }
    }
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  template <typename... Args>
  T* New(Args&&... args) {
    Slot* slot = free_head_;
    if (slot != nullptr) {
      free_head_ = slot->next;
      ++reused_;
    } else {
      slot = Grow();
    }
    slot->next = InUseMarker();
    ++outstanding_;
    return new (slot->storage) T(std::forward<Args>(args)...);
  }

  void Delete(T* object) {
    if (object == nullptr) {
      return;
    }
    Slot* slot = SlotOf(object);
    FLOCK_CHECK(slot->next == InUseMarker())
        << "pool Delete of a pointer that is not a live pool object "
           "(double free or foreign pointer)";
    object->~T();
    slot->next = free_head_;
    free_head_ = slot;
    FLOCK_CHECK_GT(outstanding_, 0u);
    --outstanding_;
  }

  // Live objects currently handed out.
  size_t outstanding() const { return outstanding_; }
  // Total slots across all slabs.
  size_t capacity() const { return slabs_.size() * slab_objects_; }
  size_t slab_count() const { return slabs_.size(); }
  // Allocations served from the free list (steady state ⇒ all of them).
  uint64_t reused() const { return reused_; }

 private:
  struct Slot {
    Slot* next;
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  static Slot* SlotOf(T* object) {
    return reinterpret_cast<Slot*>(reinterpret_cast<unsigned char*>(object) -
                                   offsetof(Slot, storage));
  }

  // Never a valid Slot* (unaligned); marks a slot as handed out.
  static Slot* InUseMarker() {
    return reinterpret_cast<Slot*>(uintptr_t{1});
  }

  Slot* Grow() {
    auto slab = std::make_unique<Slot[]>(slab_objects_);
    // Thread all but the returned slot onto the free list, keeping address
    // order so early allocations are cache-adjacent.
    for (size_t i = slab_objects_; i-- > 1;) {
      slab[i].next = free_head_;
      free_head_ = &slab[i];
    }
    Slot* first = &slab[0];
    slabs_.push_back(std::move(slab));
    return first;
  }

  size_t slab_objects_;
  Slot* free_head_ = nullptr;
  size_t outstanding_ = 0;
  uint64_t reused_ = 0;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
};

// Byte buffer with inline storage for payloads up to kInline bytes. The
// RPC-path request/response payloads are almost always small (the paper's
// workloads are 16–128 B), so the common case never touches the heap; larger
// payloads fall back to a heap block grown geometrically.
template <size_t kInline = 128>
class SmallBuf {
 public:
  static constexpr size_t kInlineBytes = kInline;

  SmallBuf() = default;
  ~SmallBuf() { delete[] heap_; }

  SmallBuf(const SmallBuf&) = delete;
  SmallBuf& operator=(const SmallBuf&) = delete;

  // Movable so a payload can travel into a coroutine frame by value: a heap
  // block changes owner, inline contents are memcpy'd.
  SmallBuf(SmallBuf&& other) noexcept { MoveFrom(other); }
  SmallBuf& operator=(SmallBuf&& other) noexcept {
    if (this != &other) {
      delete[] heap_;
      MoveFrom(other);
    }
    return *this;
  }

  // Sets the size to `n` and returns the writable destination pointer.
  uint8_t* Resize(uint32_t n) {
    if (n > kInline && n > heap_capacity_) {
      delete[] heap_;
      heap_capacity_ = std::max(n, heap_capacity_ * 2);
      heap_ = new uint8_t[heap_capacity_];
    }
    size_ = n;
    return data();
  }

  void Assign(const uint8_t* src, uint32_t n) {
    std::memcpy(Resize(n), src, n);
  }

  // Appends `n` bytes, preserving existing contents across a heap growth
  // (Resize alone discards them when it reallocates). Used by segmented
  // response reassembly to accumulate chunks in arrival order.
  void Append(const uint8_t* src, uint32_t n) {
    const uint32_t old_size = size_;
    const uint64_t new_size = uint64_t{old_size} + n;
    FLOCK_CHECK_LE(new_size, uint64_t{UINT32_MAX});
    if (new_size > kInline && new_size > heap_capacity_) {
      const uint32_t new_cap =
          std::max(static_cast<uint32_t>(new_size), heap_capacity_ * 2);
      uint8_t* grown = new uint8_t[new_cap];
      std::memcpy(grown, data(), old_size);
      delete[] heap_;
      heap_ = grown;
      heap_capacity_ = new_cap;
    }
    const bool was_inline = old_size <= kInline;
    size_ = static_cast<uint32_t>(new_size);
    if (was_inline && size_ > kInline) {
      // The buffer just crossed into heap storage: carry the inline prefix.
      std::memcpy(heap_, inline_, old_size);
    }
    std::memcpy(data() + old_size, src, n);
  }

  void CopyTo(std::vector<uint8_t>* out) const {
    out->resize(size_);
    std::memcpy(out->data(), data(), size_);
  }

  uint8_t* data() { return size_ <= kInline ? inline_ : heap_; }
  const uint8_t* data() const { return size_ <= kInline ? inline_ : heap_; }
  uint32_t size() const { return size_; }
  // Whether Resize(n) would reuse existing storage (inline or retained heap
  // block) rather than allocate. Lets buffer recyclers pick a fitting block.
  bool FitsWithoutAlloc(uint32_t n) const {
    return n <= kInline || n <= heap_capacity_;
  }
  uint32_t heap_capacity() const { return heap_capacity_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }
  bool inlined() const { return size_ <= kInline; }

 private:
  void MoveFrom(SmallBuf& other) noexcept {
    size_ = other.size_;
    heap_capacity_ = other.heap_capacity_;
    heap_ = other.heap_;
    if (size_ <= kInline) {
      std::memcpy(inline_, other.inline_, size_);
    }
    other.size_ = 0;
    other.heap_capacity_ = 0;
    other.heap_ = nullptr;
  }

  uint32_t size_ = 0;
  uint32_t heap_capacity_ = 0;
  uint8_t* heap_ = nullptr;
  uint8_t inline_[kInline];
};

// Bounded-churn FIFO queue over a power-of-two ring. Unlike std::deque —
// which allocates and frees a block every time the queue drifts across a
// node boundary — the ring reaches its steady-state capacity once and then
// never touches the allocator again. Used for QP send/receive queues.
template <typename T>
class FifoRing {
 public:
  bool empty() const { return head_ == tail_; }
  size_t size() const { return static_cast<size_t>(tail_ - head_); }

  void push_back(const T& item) {
    if (tail_ - head_ == ring_.size()) {
      Grow();
    }
    ring_[tail_ & (ring_.size() - 1)] = item;
    ++tail_;
  }

  T& front() {
    FLOCK_CHECK(!empty());
    return ring_[head_ & (ring_.size() - 1)];
  }

  void pop_front() {
    FLOCK_CHECK(!empty());
    ++head_;
  }

 private:
  void Grow() {
    const size_t old_cap = ring_.size();
    const size_t new_cap = old_cap == 0 ? 16 : old_cap * 2;
    std::vector<T> grown(new_cap);
    for (uint64_t i = head_; i != tail_; ++i) {
      grown[i & (new_cap - 1)] = ring_[i & (old_cap - 1)];
    }
    ring_ = std::move(grown);
  }

  std::vector<T> ring_;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
};

// Open-addressed map from a monotonically increasing sequence number to a
// pointer. Linear probing with backward-shift deletion (no tombstones);
// identity hashing is ideal because live keys are a dense window of recent
// sequence numbers. Replaces unordered_map on the RPC response path.
//
// Key 0 is reserved (sequence numbers start at 1).
template <typename V>
class SeqSlotMap {
 public:
  void Insert(uint32_t seq, V* value) {
    FLOCK_CHECK_NE(seq, 0u);
    FLOCK_CHECK(value != nullptr);
    if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) {
      Grow();
    }
    size_t i = seq & Mask();
    while (slots_[i].value != nullptr) {
      FLOCK_CHECK_NE(slots_[i].seq, seq) << "duplicate sequence number";
      i = (i + 1) & Mask();
    }
    slots_[i] = Slot{seq, value};
    ++size_;
  }

  // Removes and returns the entry for `seq`; nullptr if absent.
  V* Take(uint32_t seq) {
    if (slots_.empty()) {
      return nullptr;
    }
    size_t i = seq & Mask();
    while (slots_[i].value != nullptr) {
      if (slots_[i].seq == seq) {
        V* value = slots_[i].value;
        ShiftOut(i);
        --size_;
        return value;
      }
      i = (i + 1) & Mask();
    }
    return nullptr;
  }

  // Returns the entry for `seq` without removing it; nullptr if absent.
  // Segmented responses look the RPC up per chunk and only Take() it when
  // the final chunk lands.
  V* Find(uint32_t seq) const {
    if (slots_.empty()) {
      return nullptr;
    }
    size_t i = seq & Mask();
    while (slots_[i].value != nullptr) {
      if (slots_[i].seq == seq) {
        return slots_[i].value;
      }
      i = (i + 1) & Mask();
    }
    return nullptr;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

  // Visits every live entry (unspecified order). The callback must not
  // mutate the map — collect first, then Insert/Take (used by the RPC retry
  // watchdog to scan outstanding requests for expired deadlines).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.value != nullptr) {
        fn(slot.seq, slot.value);
      }
    }
  }

 private:
  struct Slot {
    uint32_t seq = 0;
    V* value = nullptr;
  };

  size_t Mask() const { return slots_.size() - 1; }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 64 : old.size() * 2, Slot{});
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.value != nullptr) {
        size_t i = slot.seq & Mask();
        while (slots_[i].value != nullptr) {
          i = (i + 1) & Mask();
        }
        slots_[i] = slot;
        ++size_;
      }
    }
  }

  // Backward-shift deletion: walk the probe chain after the hole and move
  // back every entry whose home position precedes the hole.
  void ShiftOut(size_t hole) {
    size_t i = (hole + 1) & Mask();
    while (slots_[i].value != nullptr) {
      const size_t home = slots_[i].seq & Mask();
      if (((i - home) & Mask()) >= ((i - hole) & Mask())) {
        slots_[hole] = slots_[i];
        hole = i;
      }
      i = (i + 1) & Mask();
    }
    slots_[hole] = Slot{};
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace flock

#endif  // FLOCK_COMMON_POOL_H_
