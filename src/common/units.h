// Simulation time and size units.
//
// All simulated time is carried as integer nanoseconds (Nanos) to keep the
// event queue total-ordering exact; floating point creeps in only at the edges
// (bandwidth division) and is rounded up so a byte never travels faster than
// the link allows.
#ifndef FLOCK_COMMON_UNITS_H_
#define FLOCK_COMMON_UNITS_H_

#include <cstdint>

namespace flock {

using Nanos = int64_t;

constexpr Nanos kNanosecond = 1;
constexpr Nanos kMicrosecond = 1000;
constexpr Nanos kMillisecond = 1000 * 1000;
constexpr Nanos kSecond = 1000 * 1000 * 1000;

constexpr uint64_t KiB(uint64_t n) { return n << 10; }
constexpr uint64_t MiB(uint64_t n) { return n << 20; }
constexpr uint64_t GiB(uint64_t n) { return n << 30; }

// Gigabits-per-second to bytes-per-nanosecond.
constexpr double GbpsToBytesPerNano(double gbps) { return gbps / 8.0; }

// Time to serialize `bytes` onto a link of `bytes_per_nano` capacity, rounded
// up so that serialization time is never optimistic.
inline Nanos SerializationDelay(uint64_t bytes, double bytes_per_nano) {
  const double t = static_cast<double>(bytes) / bytes_per_nano;
  const Nanos whole = static_cast<Nanos>(t);
  return (static_cast<double>(whole) < t) ? whole + 1 : whole;
}

}  // namespace flock

#endif  // FLOCK_COMMON_UNITS_H_
