#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

#include "src/common/logging.h"

namespace flock {

Histogram::Histogram() : buckets_(kRanges * kSubBuckets, 0) { Reset(); }

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = std::numeric_limits<int64_t>::min();
}

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<int>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kMantissaBits;
  const int sub = static_cast<int>((v >> shift) - kSubBuckets);
  int index = (shift + 1) * kSubBuckets + sub;
  const int last = kRanges * kSubBuckets - 1;
  return index > last ? last : index;
}

int64_t Histogram::BucketMidpoint(int index) {
  const int range = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (range == 0) {
    return sub;
  }
  const int shift = range - 1;
  const int64_t lo = (static_cast<int64_t>(kSubBuckets + sub)) << shift;
  const int64_t width = static_cast<int64_t>(1) << shift;
  return lo + width / 2;
}

void Histogram::Record(int64_t value) {
  buckets_[static_cast<size_t>(BucketIndex(value))]++;
  count_++;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  FLOCK_CHECK_EQ(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
}

int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }
int64_t Histogram::max() const { return count_ == 0 ? 0 : max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i];
    if (running >= target) {
      const int64_t mid = BucketMidpoint(static_cast<int>(i));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "p50=%.1fus p99=%.1fus mean=%.1fus",
                static_cast<double>(Median()) / 1e3,
                static_cast<double>(P99()) / 1e3, Mean() / 1e3);
  return buf;
}

}  // namespace flock
