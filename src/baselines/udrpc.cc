#include "src/baselines/udrpc.h"

#include <algorithm>
#include <cstring>

namespace flock::baselines {

namespace {

constexpr uint16_t kFlagResponse = 1;
constexpr uint32_t kSendSlots = 64;       // client-side (bounded by outstanding)
constexpr uint32_t kServerSendSlots = 512; // server-side response staging

// Exponential poll backoff: models a polling loop at coarse granularity so an
// idle wait costs O(log) simulation events while still charging full CPU.
Nanos NextBackoff(Nanos current) { return std::min<Nanos>(current * 2, 1000); }

}  // namespace

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

UdRpcServer::UdRpcServer(verbs::Cluster& cluster, int node, const Config& config)
    : cluster_(cluster), node_(node), config_(config) {
  scratch_.resize(config_.mtu_payload + sizeof(UdWireHeader));
  workers_.resize(static_cast<size_t>(config_.worker_threads));
  fabric::MemorySpace& mem = cluster_.mem(node_);
  for (auto& worker : workers_) {
    verbs::Device& device = cluster_.device(node_);
    worker.send_cq = device.CreateCq();
    worker.recv_cq = device.CreateCq();
    worker.qp = device.CreateQp(verbs::QpType::kUd, worker.send_cq, worker.recv_cq);
    const uint32_t buf_bytes = config_.mtu_payload + sizeof(UdWireHeader);
    for (uint32_t i = 0; i < config_.recv_pool; ++i) {
      const uint64_t addr = mem.Alloc(buf_bytes);
      worker.recv_buffers.push_back(addr);
      transport_->PostRecv(*worker.qp, verbs::RecvWr{addr, addr, buf_bytes});
    }
    worker.send_buf = mem.Alloc(static_cast<size_t>(buf_bytes) * kServerSendSlots);
  }
}

void UdRpcServer::RegisterHandler(uint16_t rpc_id, RpcHandler handler) {
  handlers_[rpc_id] = std::move(handler);
}

void UdRpcServer::Start() {
  for (int i = 0; i < config_.worker_threads; ++i) {
    cluster_.sim().Spawn(WorkerLoop(i), node_);
  }
}

UdEndpoint UdRpcServer::endpoint(int worker) const {
  return UdEndpoint{node_, workers_[static_cast<size_t>(worker)].qp->qpn()};
}

sim::Proc UdRpcServer::WorkerLoop(int index) {
  Worker& worker = workers_[static_cast<size_t>(index)];
  sim::Core& core = cluster_.cpu(node_).core(index);
  const sim::CostModel& cost = cluster_.cost();
  fabric::MemorySpace& mem = cluster_.mem(node_);
  std::vector<uint8_t> resp_scratch(config_.mtu_payload);
  const uint32_t buf_bytes = config_.mtu_payload + sizeof(UdWireHeader);
  constexpr uint32_t kSignal = 16;
  uint64_t send_slot = 0;
  uint64_t posts = 0;
  uint64_t acked = 0;
  Nanos backoff = cost.cpu_cq_poll_empty;

  verbs::Completion wcs[kCqPollBatch];
  for (;;) {
    Nanos work = cost.cpu_cq_poll_empty;
    bool found = false;
    // Vectorized drain, looping until the CQ reads empty: the stall below can
    // suspend mid-batch, so a fresh poll after each batch picks up datagrams
    // that landed while we were parked (same coverage as a one-at-a-time
    // Poll loop, one poll_cq call per kCqPollBatch CQEs).
    for (size_t nc; (nc = transport_->PollBatch(*worker.recv_cq, wcs, kCqPollBatch)) > 0;) {
      found = true;
      for (size_t ci = 0; ci < nc; ++ci) {
        const verbs::Completion& wc = wcs[ci];
        // Per-packet UD software cost: header parse, session lookup, software
        // reliability bookkeeping — plus completion consumption.
        work += cost.cpu_cqe_handle + cost.cpu_ud_pkt_process;
        UdWireHeader header;
        mem.Read(wc.wr_id, &header, sizeof(header));
        auto it = handlers_.find(header.rpc_id);
        FLOCK_CHECK(it != handlers_.end()) << "no UD handler for rpc " << header.rpc_id;
        Nanos handler_cpu = 0;
        const uint32_t resp_len = it->second(
            mem.At(wc.wr_id + sizeof(UdWireHeader)), header.payload_len,
            resp_scratch.data(), config_.mtu_payload, &handler_cpu);
        work += handler_cpu;
        ++requests_handled_;

        // Build and send the response datagram.
        UdWireHeader resp_header = header;
        resp_header.flags = kFlagResponse;
        resp_header.payload_len = resp_len;
        resp_header.src_node = node_;
        resp_header.src_qpn = worker.qp->qpn();
        // A TX slot must not be reused before the NIC has consumed it: stall
        // (burning CPU on CQ polling, as a real sender would) while the send
        // queue is deeper than the staging pool.
        while (posts - acked > kServerSendSlots - kSignal) {
          verbs::Completion send_wcs[kCqPollBatch];
          for (size_t ns; (ns = transport_->PollBatch(*worker.send_cq, send_wcs, kCqPollBatch)) > 0;) {
            acked += kSignal * ns;
            work += cost.cpu_cqe_handle * static_cast<Nanos>(ns);
          }
          // Charge everything accumulated so far, then keep polling.
          co_await core.Work(work + cost.cpu_cq_poll_empty);
          work = 0;
        }
        const uint64_t slot =
            worker.send_buf +
            (send_slot++ % kServerSendSlots) * static_cast<uint64_t>(buf_bytes);
        mem.Write(slot, &resp_header, sizeof(resp_header));
        if (resp_len > 0) {
          mem.Write(slot + sizeof(resp_header), resp_scratch.data(), resp_len);
        }
        work += cost.MemcpyCost(sizeof(resp_header) + resp_len) + cost.cpu_wqe_prep +
                cost.cpu_mmio_doorbell + cost.cpu_ud_pkt_process;
        verbs::SendWr send;
        send.opcode = verbs::Opcode::kSend;
        send.local_addr = slot;
        send.length = sizeof(resp_header) + resp_len;
        send.dest_node = header.src_node;
        send.dest_qpn = header.src_qpn;
        posts += 1;
        send.signaled = (posts % kSignal) == 0;
        if (transport_->Post(*worker.qp, send) != verbs::WcStatus::kSuccess) {
          ++send_failures_;
        }

        // Recycle the receive buffer (the dominant Fig. 2(b) cost).
        transport_->PostRecv(*worker.qp, verbs::RecvWr{wc.wr_id, wc.wr_id, buf_bytes});
        work += cost.cpu_post_recv;
      }
    }
    for (size_t nc; (nc = transport_->PollBatch(*worker.send_cq, wcs, kCqPollBatch)) > 0;) {
      acked += kSignal * nc;
      work += cost.cpu_cqe_handle * static_cast<Nanos>(nc);
    }
    if (found) {
      backoff = cost.cpu_cq_poll_empty;
      co_await core.Work(work);
    } else {
      co_await core.Work(backoff);
      backoff = NextBackoff(backoff);
    }
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

UdRpcClient::Thread* UdRpcClient::CreateThread(int core, uint32_t recv_pool) {
  threads_.push_back(std::make_unique<Thread>(cluster_, node_, core, recv_pool));
  return threads_.back().get();
}

UdRpcClient::Thread::Thread(verbs::Cluster& cluster, int node, int core,
                            uint32_t recv_pool)
    : cluster_(cluster),
      node_(node),
      core_(&cluster.cpu(node).core(core)),
      completion_cond_(std::make_unique<sim::Condition>(cluster.sim())) {
  verbs::Device& device = cluster_.device(node_);
  send_cq_ = device.CreateCq();
  recv_cq_ = device.CreateCq();
  qp_ = device.CreateQp(verbs::QpType::kUd, send_cq_, recv_cq_);
  fabric::MemorySpace& mem = cluster_.mem(node_);
  const uint32_t buf_bytes = 4096;
  for (uint32_t i = 0; i < recv_pool; ++i) {
    const uint64_t addr = mem.Alloc(buf_bytes);
    transport_->PostRecv(*qp_, verbs::RecvWr{addr, addr, buf_bytes});
  }
  send_buf_ = mem.Alloc(static_cast<uint64_t>(buf_bytes) * kSendSlots);
}

sim::Co<UdRpcClient::Pending*> UdRpcClient::Thread::Send(const UdEndpoint& server,
                                                         uint16_t rpc_id,
                                                         const uint8_t* data,
                                                         uint32_t len) {
  const sim::CostModel& cost = cluster_.cost();
  fabric::MemorySpace& mem = cluster_.mem(node_);

  auto* pending = new Pending();
  pending->seq = next_seq_++;
  pending->submitted_at = cluster_.sim().Now();
  pending_[pending->seq] = pending;

  UdWireHeader header;
  header.rpc_id = rpc_id;
  header.seq = pending->seq;
  header.src_node = node_;
  header.src_qpn = qp_->qpn();
  header.payload_len = len;

  const uint64_t slot = send_buf_ + (pending->seq % kSendSlots) * uint64_t{4096};
  mem.Write(slot, &header, sizeof(header));
  if (len > 0) {
    mem.Write(slot + sizeof(header), data, len);
  }
  co_await core_->Work(cost.MemcpyCost(sizeof(header) + len) + cost.cpu_wqe_prep +
                       cost.cpu_mmio_doorbell + cost.cpu_ud_pkt_process);

  verbs::SendWr send;
  send.opcode = verbs::Opcode::kSend;
  send.local_addr = slot;
  send.length = sizeof(header) + len;
  send.dest_node = server.node;
  send.dest_qpn = server.qpn;
  send.signaled = (pending->seq % 64) == 0;
  FLOCK_CHECK(transport_->Post(*qp_, send) == verbs::WcStatus::kSuccess);
  co_return pending;
}

bool UdRpcClient::Thread::DrainCompletions(Nanos* work) {
  const sim::CostModel& cost = cluster_.cost();
  fabric::MemorySpace& mem = cluster_.mem(node_);
  bool any = false;
  verbs::Completion wcs[kCqPollBatch];
  for (size_t nc; (nc = transport_->PollBatch(*recv_cq_, wcs, kCqPollBatch)) > 0;) {
    any = true;
    for (size_t ci = 0; ci < nc; ++ci) {
      const verbs::Completion& wc = wcs[ci];
      *work += cost.cpu_cqe_handle + cost.cpu_ud_pkt_process + cost.cpu_post_recv;
      UdWireHeader header;
      mem.Read(wc.wr_id, &header, sizeof(header));
      transport_->PostRecv(*qp_, verbs::RecvWr{wc.wr_id, wc.wr_id, 4096});
      auto it = pending_.find(header.seq);
      if (it == pending_.end()) {
        continue;  // response for a request we already declared lost
      }
      Pending* pending = it->second;
      pending_.erase(it);
      pending->response.resize(header.payload_len);
      if (header.payload_len > 0) {
        mem.Read(wc.wr_id + sizeof(header), pending->response.data(),
                 header.payload_len);
        *work += cost.MemcpyCost(header.payload_len);
      }
      pending->done = true;
      pending->completed_at = cluster_.sim().Now();
    }
    if (nc < kCqPollBatch) {
      break;
    }
  }
  for (size_t nc; (nc = transport_->PollBatch(*send_cq_, wcs, kCqPollBatch)) > 0;) {
    *work += cost.cpu_cqe_handle * static_cast<Nanos>(nc);
    if (nc < kCqPollBatch) {
      break;
    }
  }
  return any;
}

void UdRpcClient::Thread::StartPoller() {
  FLOCK_CHECK(!poller_running_);
  poller_running_ = true;
  cluster_.sim().Spawn(PollerLoop(), node_);
}

sim::Proc UdRpcClient::Thread::PollerLoop() {
  const sim::CostModel& cost = cluster_.cost();
  Nanos backoff = cost.cpu_cq_poll_empty;
  for (;;) {
    Nanos work = cost.cpu_cq_poll_empty;
    const bool progress = DrainCompletions(&work);
    // Software reliability: expire requests whose deadline passed.
    bool expired = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second->deadline > 0 && cluster_.sim().Now() >= it->second->deadline) {
        it->second->lost = true;
        ++timeouts_;
        expired = true;
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    if (progress || expired) {
      completion_cond_->NotifyAll();
      backoff = cost.cpu_cq_poll_empty;
      co_await core_->Work(work);
    } else {
      co_await core_->Work(work + backoff);
      backoff = NextBackoff(backoff);
    }
  }
}

sim::Co<bool> UdRpcClient::Thread::Await(Pending* pending, Nanos timeout) {
  if (poller_running_) {
    pending->deadline = cluster_.sim().Now() + timeout;
    while (!pending->done && !pending->lost) {
      co_await completion_cond_->Wait();
    }
    co_return !pending->lost;
  }
  const sim::CostModel& cost = cluster_.cost();
  const Nanos deadline = cluster_.sim().Now() + timeout;
  Nanos backoff = cost.cpu_cq_poll_empty;
  while (!pending->done) {
    Nanos work = cost.cpu_cq_poll_empty;
    DrainCompletions(&work);
    if (pending->done) {
      co_await core_->Work(work);
      break;
    }
    if (cluster_.sim().Now() >= deadline) {
      // Software reliability declares the packet lost (FaSST-style).
      pending->lost = true;
      pending_.erase(pending->seq);
      ++timeouts_;
      co_return false;
    }
    co_await core_->Work(work + backoff);
    backoff = NextBackoff(backoff);
  }
  co_return true;
}

sim::Co<bool> UdRpcClient::Thread::Call(const UdEndpoint& server, uint16_t rpc_id,
                                        const uint8_t* data, uint32_t len,
                                        std::vector<uint8_t>* response, Nanos timeout) {
  Pending* pending = co_await Send(server, rpc_id, data, len);
  const bool ok = co_await Await(pending, timeout);
  if (ok && response != nullptr) {
    *response = std::move(pending->response);
  }
  delete pending;
  co_return ok;
}

}  // namespace flock::baselines
