#include "src/baselines/rcrpc.h"

#include <algorithm>

namespace flock::baselines {

namespace {

constexpr uint32_t kSignalInterval = 16;

uint64_t PendingKey(uint16_t thread_id, uint32_t seq) {
  return (uint64_t{thread_id} << 32) | seq;
}

// Posts a (possibly wrapped) single-request message already encoded in the
// lane staging buffer.
template <typename LaneT>
verbs::WcStatus PostRingWrite(flock::TransportOps& transport, LaneT& lane,
                              const RingProducer::Reservation& resv,
                              uint32_t msg_len, uint64_t canary) {
  std::vector<verbs::SendWr> wrs;
  if (resv.wrapped) {
    wire::EncodeWrapMarker(lane.staging + resv.marker_offset, canary);
    verbs::SendWr marker;
    marker.opcode = verbs::Opcode::kWrite;
    marker.local_addr = lane.staging_addr + resv.marker_offset;
    marker.length = wire::kWrapMarkerBytes;
    marker.remote_addr = lane.remote_ring_addr + resv.marker_offset;
    marker.rkey = lane.remote_ring_rkey;
    marker.signaled = false;
    wrs.push_back(marker);
  }
  verbs::SendWr msg;
  msg.opcode = verbs::Opcode::kWrite;
  msg.local_addr = lane.staging_addr + resv.offset;
  msg.length = msg_len;
  msg.remote_addr = lane.remote_ring_addr + resv.offset;
  msg.rkey = lane.remote_ring_rkey;
  lane.posts += 1;
  msg.signaled = (lane.posts % kSignalInterval) == 0;
  wrs.push_back(msg);
  return transport.PostBatch(*lane.qp, wrs.data(), wrs.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

RcRpcServer::RcRpcServer(verbs::Cluster& cluster, int node, int dispatcher_cores)
    : cluster_(cluster), node_(node), dispatcher_cores_(dispatcher_cores) {
  dispatcher_lanes_.resize(static_cast<size_t>(dispatcher_cores));
}

void RcRpcServer::RegisterHandler(uint16_t rpc_id, RpcHandler handler) {
  handlers_[rpc_id] = std::move(handler);
}

void RcRpcServer::Start() {
  for (int i = 0; i < dispatcher_cores_; ++i) {
    cluster_.sim().Spawn(Dispatcher(i), node_);
  }
}

sim::Proc RcRpcServer::Dispatcher(int index) {
  sim::Core& core = cluster_.cpu(node_).core(index);
  const sim::CostModel& cost = cluster_.cost();
  std::vector<uint8_t> scratch(8192);

  for (;;) {
    Nanos pass_cost = 0;
    for (size_t li = 0; li < dispatcher_lanes_[static_cast<size_t>(index)].size();
         ++li) {
      Lane& lane = *dispatcher_lanes_[static_cast<size_t>(index)][li];
      pass_cost += cost.cpu_ring_poll_empty;
      wire::MsgHeader header;
      if (lane.req_consumer->Probe(&header) != wire::ProbeResult::kMessage) {
        continue;
      }
      co_await core.Work(pass_cost);
      pass_cost = 0;

      lane.resp_producer.OnHeadUpdate(header.piggyback_head);
      FLOCK_CHECK_EQ(header.num_reqs, 1) << "RC baseline messages carry one request";
      wire::ReqView view;
      FLOCK_CHECK(wire::DecodeRequests(lane.req_consumer->MessagePtr(), header, &view));

      auto it = handlers_.find(view.meta.rpc_id);
      FLOCK_CHECK(it != handlers_.end());
      Nanos handler_cpu = 0;
      const uint32_t resp_len = it->second(view.data, view.meta.data_len,
                                           scratch.data(), 8192, &handler_cpu);
      ++requests_handled_;

      const uint32_t msg_len = wire::MessageBytes(1, resp_len);
      RingProducer::Reservation resv;
      while (!lane.resp_producer.Reserve(msg_len, &resv)) {
        co_await sim::Delay(cluster_.sim(), kMicrosecond);
        wire::MsgHeader next;
        if (lane.req_consumer->Probe(&next) == wire::ProbeResult::kMessage) {
          lane.resp_producer.OnHeadUpdate(next.piggyback_head);
        }
      }

      co_await core.Work(cost.cpu_msg_fixed + 2 * cost.cpu_msg_per_req + handler_cpu +
                         cost.MemcpyCost(header.total_len + resp_len));
      lane.req_consumer->Consume(header);

      const uint64_t canary = SplitMix64(rng_state_);
      wire::MessageEncoder encoder(lane.staging + resv.offset, msg_len, canary);
      wire::ReqMeta resp_meta = view.meta;
      resp_meta.data_len = resp_len;
      encoder.Add(resp_meta, scratch.data());
      FLOCK_CHECK_EQ(encoder.Seal(lane.req_consumer->consumed_report(), 0), msg_len);

      co_await core.Work(2 * cost.cpu_wqe_prep + cost.cpu_mmio_doorbell);
      FLOCK_CHECK(PostRingWrite(*transport_, lane, resv, msg_len, canary) ==
                  verbs::WcStatus::kSuccess);
    }
    co_await core.Work(pass_cost > 0 ? pass_cost : cost.cpu_ring_poll_empty);
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

RcRpcClient::RcRpcClient(verbs::Cluster& cluster, int node, RcRpcServer& server,
                         uint32_t ring_bytes)
    : cluster_(cluster), node_(node), server_(server), ring_bytes_(ring_bytes) {}

RcRpcClient::Lane* RcRpcClient::CreateLane() {
  auto cl = std::make_unique<Lane>(cluster_.sim(), ring_bytes_);
  auto sl = std::make_unique<RcRpcServer::Lane>(ring_bytes_);

  verbs::Device& cdev = cluster_.device(node_);
  verbs::Device& sdev = cluster_.device(server_.node_);
  verbs::Cq* c_scq = cdev.CreateCq();
  verbs::Cq* c_rcq = cdev.CreateCq();
  verbs::Cq* s_scq = sdev.CreateCq();
  verbs::Cq* s_rcq = sdev.CreateCq();
  auto [cqp, sqp] =
      cluster_.ConnectRc(node_, c_scq, c_rcq, server_.node_, s_scq, s_rcq);
  cl->qp = cqp;
  sl->qp = sqp;

  fabric::MemorySpace& cmem = cluster_.mem(node_);
  fabric::MemorySpace& smem = cluster_.mem(server_.node_);

  const uint64_t req_ring = smem.Alloc(ring_bytes_);
  verbs::Mr req_mr = sdev.RegisterMr(req_ring, ring_bytes_);
  sl->req_consumer = std::make_unique<RingConsumer>(smem.At(req_ring), ring_bytes_);
  cl->remote_ring_addr = req_ring;
  cl->remote_ring_rkey = req_mr.rkey;
  cl->staging_addr = cmem.Alloc(ring_bytes_);
  cl->staging = cmem.At(cl->staging_addr);

  const uint64_t resp_ring = cmem.Alloc(ring_bytes_);
  verbs::Mr resp_mr = cdev.RegisterMr(resp_ring, ring_bytes_);
  cl->resp_consumer = std::make_unique<RingConsumer>(cmem.At(resp_ring), ring_bytes_);
  sl->remote_ring_addr = resp_ring;
  sl->remote_ring_rkey = resp_mr.rkey;
  sl->staging_addr = smem.Alloc(ring_bytes_);
  sl->staging = smem.At(sl->staging_addr);

  server_.dispatcher_lanes_[server_.lanes_.size() %
                            static_cast<size_t>(server_.dispatcher_cores_)]
      .push_back(sl.get());
  server_.lanes_.push_back(std::move(sl));
  lanes_.push_back(std::move(cl));
  return lanes_.back().get();
}

FlockThread* RcRpcClient::CreateThread(int core) {
  const uint16_t id = static_cast<uint16_t>(threads_.size());
  threads_.push_back(std::make_unique<FlockThread>(
      node_, id, &cluster_.cpu(node_).core(core), SplitMix64(rng_state_)));
  return threads_.back().get();
}

void RcRpcClient::Start() {
  cluster_.sim().Spawn(ResponseDispatcher(), node_);
}

sim::Co<bool> RcRpcClient::Call(FlockThread& thread, Lane& lane, uint16_t rpc_id,
                                const uint8_t* data, uint32_t len,
                                std::vector<uint8_t>* response) {
  const sim::CostModel& cost = cluster_.cost();

  Pending pending(cluster_.sim());
  const uint32_t seq = thread.NextSeq();
  pending_[PendingKey(thread.id(), seq)] = &pending;

  // FaRM-style: a spinlock serializes the whole prepare-and-post section.
  co_await thread.core().Work(cost.cpu_atomic_rmw + cost.cpu_cacheline_transfer);
  co_await lane.lock.Acquire();

  const uint32_t msg_len = wire::MessageBytes(1, len);
  RingProducer::Reservation resv;
  while (!lane.req_producer.Reserve(msg_len, &resv)) {
    co_await lane.space_ready.Wait();
  }
  const uint64_t canary = SplitMix64(rng_state_);
  wire::MessageEncoder encoder(lane.staging + resv.offset, msg_len, canary);
  wire::ReqMeta meta{len, thread.id(), rpc_id, seq};
  encoder.Add(meta, data);
  FLOCK_CHECK_EQ(encoder.Seal(lane.resp_consumer->consumed_report(), 0), msg_len);

  co_await thread.core().Work(cost.cpu_msg_fixed + cost.cpu_msg_per_req +
                              cost.MemcpyCost(len) + 2 * cost.cpu_wqe_prep +
                              cost.cpu_mmio_doorbell);
  FLOCK_CHECK(PostRingWrite(*transport_, lane, resv, msg_len, canary) ==
              verbs::WcStatus::kSuccess);
  lane.requests += 1;
  lane.lock.Release();

  if (!pending.done) {
    co_await pending.cond.Wait();
  }
  co_await thread.core().Work(cost.cpu_cqe_handle);
  if (response != nullptr) {
    *response = std::move(pending.response);
  }
  co_return true;
}

sim::Proc RcRpcClient::ResponseDispatcher() {
  sim::Core& core =
      cluster_.cpu(node_).core(cluster_.cpu(node_).num_cores() - 1);
  const sim::CostModel& cost = cluster_.cost();

  for (;;) {
    Nanos pass_cost = 0;
    for (size_t li = 0; li < lanes_.size(); ++li) {
      Lane& lane = *lanes_[li];
      pass_cost += cost.cpu_ring_poll_empty;
      wire::MsgHeader header;
      if (lane.resp_consumer->Probe(&header) != wire::ProbeResult::kMessage) {
        continue;
      }
      co_await core.Work(pass_cost);
      pass_cost = 0;

      lane.req_producer.OnHeadUpdate(header.piggyback_head);
      lane.space_ready.NotifyAll();

      wire::ReqView view;
      FLOCK_CHECK(wire::DecodeRequests(lane.resp_consumer->MessagePtr(), header, &view));
      const uint64_t key = PendingKey(view.meta.thread_id, view.meta.seq);
      auto it = pending_.find(key);
      FLOCK_CHECK(it != pending_.end());
      Pending* pending = it->second;
      pending_.erase(it);
      pending->response.assign(view.data, view.data + view.meta.data_len);
      pending->done = true;
      pending->cond.NotifyAll();

      co_await core.Work(cost.cpu_msg_fixed + cost.cpu_msg_per_req +
                         cost.MemcpyCost(view.meta.data_len + header.total_len));
      lane.resp_consumer->Consume(header);
    }
    co_await core.Work(pass_cost > 0 ? pass_cost : cost.cpu_ring_poll_empty);
  }
}

}  // namespace flock::baselines
