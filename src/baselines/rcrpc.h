// RC ring-buffer RPC baselines for §8.3.1 / Fig. 9:
//
//   * "no sharing"   — every application thread owns a dedicated QP and ring
//                      pair (maximum NIC parallelism, maximum NIC state);
//   * "FaRM sharing" — 2 or 4 threads share a QP guarded by a spinlock held
//                      across the encode+post critical section. Requests are
//                      *individual* messages: lock-based sharing gets none of
//                      the coalescing benefits of Flock synchronization.
//
// Both use the same two-RDMA-write RPC as Flock (request write into a server
// ring, response write back), the same wire format (always one request per
// message) and the same piggybacked-head space reclamation, so Fig. 9 isolates
// exactly the synchronization/scheduling difference.
#ifndef FLOCK_BASELINES_RCRPC_H_
#define FLOCK_BASELINES_RCRPC_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/flock/ring.h"
#include "src/flock/thread.h"  // RpcHandler, FlockThread
#include "src/flock/transport.h"
#include "src/flock/wire.h"
#include "src/sim/sync.h"
#include "src/verbs/device.h"

namespace flock::baselines {

class RcRpcServer;

class RcRpcClient {
 public:
  struct Pending {
    explicit Pending(sim::Simulator& sim) : cond(sim) {}
    sim::Condition cond;
    bool done = false;
    std::vector<uint8_t> response;
  };

  struct Lane {
    Lane(sim::Simulator& sim, uint32_t ring_bytes)
        : req_producer(ring_bytes), lock(sim), space_ready(sim) {}
    verbs::Qp* qp = nullptr;
    RingProducer req_producer;
    uint8_t* staging = nullptr;
    uint64_t staging_addr = 0;
    uint64_t remote_ring_addr = 0;
    uint32_t remote_ring_rkey = 0;
    std::unique_ptr<RingConsumer> resp_consumer;
    sim::FifoMutex lock;  // the FaRM-style spinlock
    sim::Condition space_ready;
    uint64_t posts = 0;
    uint64_t requests = 0;
  };

  RcRpcClient(verbs::Cluster& cluster, int node, RcRpcServer& server,
              uint32_t ring_bytes = 256 * 1024);

  // Creates one QP lane (a connected QP + ring pair on both ends).
  Lane* CreateLane();
  FlockThread* CreateThread(int core);
  // Starts the client response dispatcher (top core of the node).
  void Start();

  // One RPC: spinlock-protected encode + RDMA write, then wait for the
  // response dispatcher to deliver the reply.
  sim::Co<bool> Call(FlockThread& thread, Lane& lane, uint16_t rpc_id,
                     const uint8_t* data, uint32_t len, std::vector<uint8_t>* response);

  Lane& lane(size_t i) { return *lanes_[i]; }
  size_t num_lanes() const { return lanes_.size(); }

 private:
  sim::Proc ResponseDispatcher();

  verbs::Cluster& cluster_;
  const int node_;
  RcRpcServer& server_;
  const uint32_t ring_bytes_;
  // Post/poll seam shared with the Flock runtime (simulated verbs by default).
  TransportOps* transport_ = &SimTransportInstance();
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<FlockThread>> threads_;
  std::unordered_map<uint64_t, Pending*> pending_;
  uint64_t rng_state_ = 0x51ed270b7159a3f1ull;
};

class RcRpcServer {
 public:
  struct Lane {
    explicit Lane(uint32_t ring_bytes) : resp_producer(ring_bytes) {}
    verbs::Qp* qp = nullptr;
    std::unique_ptr<RingConsumer> req_consumer;
    RingProducer resp_producer;
    uint8_t* staging = nullptr;
    uint64_t staging_addr = 0;
    uint64_t remote_ring_addr = 0;
    uint32_t remote_ring_rkey = 0;
    uint64_t posts = 0;
  };

  RcRpcServer(verbs::Cluster& cluster, int node, int dispatcher_cores);

  void RegisterHandler(uint16_t rpc_id, RpcHandler handler);
  void Start();

  uint64_t requests_handled() const { return requests_handled_; }
  int node() const { return node_; }

 private:
  friend class RcRpcClient;

  sim::Proc Dispatcher(int index);

  verbs::Cluster& cluster_;
  const int node_;
  const int dispatcher_cores_;
  TransportOps* transport_ = &SimTransportInstance();
  std::unordered_map<uint16_t, RpcHandler> handlers_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::vector<Lane*>> dispatcher_lanes_;
  uint64_t requests_handled_ = 0;
  uint64_t rng_state_ = 0xc13fa9a902a6328full;
};

}  // namespace flock::baselines

#endif  // FLOCK_BASELINES_RCRPC_H_
