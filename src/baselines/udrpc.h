// eRPC/FaSST-style RPC over unreliable datagrams (the UD baseline, §2.2).
//
// Design points taken from the published systems the paper compares against:
//   * one UD QP per server worker thread and per client thread — no
//     connection state to thrash, so the NIC scales, but
//   * every packet costs host CPU: session/header processing, software
//     reliability bookkeeping, completion handling, and receive-buffer
//     recycling (ibv_post_recv) — the ">90% of server cycles inside the
//     Mellanox userspace libraries" effect of Fig. 2(b);
//   * losses are possible (receive pool exhaustion under overload) and are
//     detected by client timeouts, as in FaSST's RPC layer.
//
// Handlers use the same RpcHandler signature as Flock so applications and
// benches can run unchanged over either transport.
#ifndef FLOCK_BASELINES_UDRPC_H_
#define FLOCK_BASELINES_UDRPC_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/flock/thread.h"  // RpcHandler
#include "src/flock/transport.h"
#include "src/sim/cpu.h"
#include "src/verbs/device.h"

namespace flock::baselines {

struct UdEndpoint {
  int node = -1;
  uint32_t qpn = 0;
};

struct UdWireHeader {
  uint16_t rpc_id = 0;
  uint16_t flags = 0;  // bit 0: response
  uint32_t seq = 0;
  int32_t src_node = -1;
  uint32_t src_qpn = 0;
  uint32_t payload_len = 0;
};
static_assert(sizeof(UdWireHeader) == 20);

class UdRpcServer {
 public:
  struct Config {
    int worker_threads = 32;
    uint32_t recv_pool = 256;   // posted receives per worker QP
    uint32_t mtu_payload = 4036;  // MTU - GRH - header
  };

  UdRpcServer(verbs::Cluster& cluster, int node, const Config& config);

  void RegisterHandler(uint16_t rpc_id, RpcHandler handler);
  void Start();

  UdEndpoint endpoint(int worker) const;
  int num_workers() const { return config_.worker_threads; }
  uint64_t requests_handled() const { return requests_handled_; }
  uint64_t send_failures() const { return send_failures_; }

 private:
  struct Worker {
    verbs::Qp* qp = nullptr;
    verbs::Cq* send_cq = nullptr;
    verbs::Cq* recv_cq = nullptr;
    std::vector<uint64_t> recv_buffers;  // fixed pool, recycled in order
    uint64_t send_buf = 0;               // staging for responses
  };

  sim::Proc WorkerLoop(int index);

  verbs::Cluster& cluster_;
  const int node_;
  Config config_;
  // Post/poll seam shared with the Flock runtime (simulated verbs by default).
  TransportOps* transport_ = &SimTransportInstance();
  std::unordered_map<uint16_t, RpcHandler> handlers_;
  std::vector<Worker> workers_;
  uint64_t requests_handled_ = 0;
  uint64_t send_failures_ = 0;
  std::vector<uint8_t> scratch_;
};

// Client-side endpoint: one UD QP per application thread.
class UdRpcClient {
 public:
  UdRpcClient(verbs::Cluster& cluster, int node) : cluster_(cluster), node_(node) {}

  struct Pending {
    bool done = false;
    bool lost = false;
    std::vector<uint8_t> response;
    uint32_t seq = 0;
    Nanos deadline = 0;  // poller mode: when software reliability gives up
    Nanos submitted_at = 0;
    Nanos completed_at = 0;
  };

  class Thread {
   public:
    Thread(verbs::Cluster& cluster, int node, int core, uint32_t recv_pool);

    // FaSST mode: one coroutine per thread is dedicated to processing
    // incoming responses (§8.5.2, "one is used for processing incoming
    // responses"). With the poller running, Await() blocks on a condition
    // instead of polling, so many worker coroutines can share this thread.
    void StartPoller();

    // Fire one request (charges send-side CPU). Returns a Pending the caller
    // must Await and then delete.
    sim::Co<Pending*> Send(const UdEndpoint& server, uint16_t rpc_id,
                           const uint8_t* data, uint32_t len);
    // Polls the thread's own CQs until `pending` completes or times out
    // (timeout = software reliability declaring a loss).
    sim::Co<bool> Await(Pending* pending, Nanos timeout = 2 * kMillisecond);
    // Send + Await.
    sim::Co<bool> Call(const UdEndpoint& server, uint16_t rpc_id, const uint8_t* data,
                       uint32_t len, std::vector<uint8_t>* response,
                       Nanos timeout = 2 * kMillisecond);

    uint64_t timeouts() const { return timeouts_; }
    sim::Core& core() { return *core_; }

   private:
    // Returns true if any completion was consumed.
    bool DrainCompletions(Nanos* work);
    sim::Proc PollerLoop();

    verbs::Cluster& cluster_;
    int node_;
    sim::Core* core_;
    TransportOps* transport_ = &SimTransportInstance();
    verbs::Qp* qp_ = nullptr;
    verbs::Cq* send_cq_ = nullptr;
    verbs::Cq* recv_cq_ = nullptr;
    uint64_t send_buf_ = 0;
    uint32_t next_seq_ = 1;
    std::unordered_map<uint32_t, Pending*> pending_;
    uint64_t timeouts_ = 0;
    bool poller_running_ = false;
    std::unique_ptr<sim::Condition> completion_cond_;
  };

  Thread* CreateThread(int core, uint32_t recv_pool = 64);

 private:
  verbs::Cluster& cluster_;
  int node_;
  std::vector<std::unique_ptr<Thread>> threads_;
};

}  // namespace flock::baselines

#endif  // FLOCK_BASELINES_UDRPC_H_
