# Empty dependencies file for flock_verbs.
# This may be replaced when dependencies are built.
