file(REMOVE_RECURSE
  "libflock_verbs.a"
)
