file(REMOVE_RECURSE
  "CMakeFiles/flock_verbs.dir/cluster.cc.o"
  "CMakeFiles/flock_verbs.dir/cluster.cc.o.d"
  "CMakeFiles/flock_verbs.dir/device.cc.o"
  "CMakeFiles/flock_verbs.dir/device.cc.o.d"
  "libflock_verbs.a"
  "libflock_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
