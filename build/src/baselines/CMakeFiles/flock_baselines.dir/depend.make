# Empty dependencies file for flock_baselines.
# This may be replaced when dependencies are built.
