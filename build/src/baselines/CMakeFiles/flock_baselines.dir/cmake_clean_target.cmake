file(REMOVE_RECURSE
  "libflock_baselines.a"
)
