file(REMOVE_RECURSE
  "CMakeFiles/flock_baselines.dir/rcrpc.cc.o"
  "CMakeFiles/flock_baselines.dir/rcrpc.cc.o.d"
  "CMakeFiles/flock_baselines.dir/udrpc.cc.o"
  "CMakeFiles/flock_baselines.dir/udrpc.cc.o.d"
  "libflock_baselines.a"
  "libflock_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
