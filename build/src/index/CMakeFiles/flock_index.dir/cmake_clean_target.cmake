file(REMOVE_RECURSE
  "libflock_index.a"
)
