# Empty dependencies file for flock_index.
# This may be replaced when dependencies are built.
