file(REMOVE_RECURSE
  "CMakeFiles/flock_index.dir/hydralist.cc.o"
  "CMakeFiles/flock_index.dir/hydralist.cc.o.d"
  "libflock_index.a"
  "libflock_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
