file(REMOVE_RECURSE
  "CMakeFiles/flock_common.dir/histogram.cc.o"
  "CMakeFiles/flock_common.dir/histogram.cc.o.d"
  "CMakeFiles/flock_common.dir/logging.cc.o"
  "CMakeFiles/flock_common.dir/logging.cc.o.d"
  "libflock_common.a"
  "libflock_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
