file(REMOVE_RECURSE
  "libflock_common.a"
)
