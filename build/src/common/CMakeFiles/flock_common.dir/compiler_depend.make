# Empty compiler generated dependencies file for flock_common.
# This may be replaced when dependencies are built.
