# Empty dependencies file for flock_core.
# This may be replaced when dependencies are built.
