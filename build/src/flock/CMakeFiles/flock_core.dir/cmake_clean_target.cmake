file(REMOVE_RECURSE
  "libflock_core.a"
)
