file(REMOVE_RECURSE
  "CMakeFiles/flock_core.dir/runtime.cc.o"
  "CMakeFiles/flock_core.dir/runtime.cc.o.d"
  "libflock_core.a"
  "libflock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
