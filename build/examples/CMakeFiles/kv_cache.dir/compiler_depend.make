# Empty compiler generated dependencies file for kv_cache.
# This may be replaced when dependencies are built.
