file(REMOVE_RECURSE
  "CMakeFiles/kv_cache.dir/kv_cache.cpp.o"
  "CMakeFiles/kv_cache.dir/kv_cache.cpp.o.d"
  "kv_cache"
  "kv_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
