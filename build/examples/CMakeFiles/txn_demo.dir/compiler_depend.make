# Empty compiler generated dependencies file for txn_demo.
# This may be replaced when dependencies are built.
