file(REMOVE_RECURSE
  "CMakeFiles/txn_demo.dir/txn_demo.cpp.o"
  "CMakeFiles/txn_demo.dir/txn_demo.cpp.o.d"
  "txn_demo"
  "txn_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
