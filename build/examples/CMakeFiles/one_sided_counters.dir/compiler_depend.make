# Empty compiler generated dependencies file for one_sided_counters.
# This may be replaced when dependencies are built.
