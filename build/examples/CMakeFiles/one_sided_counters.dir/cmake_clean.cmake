file(REMOVE_RECURSE
  "CMakeFiles/one_sided_counters.dir/one_sided_counters.cpp.o"
  "CMakeFiles/one_sided_counters.dir/one_sided_counters.cpp.o.d"
  "one_sided_counters"
  "one_sided_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_sided_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
