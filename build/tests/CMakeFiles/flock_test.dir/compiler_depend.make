# Empty compiler generated dependencies file for flock_test.
# This may be replaced when dependencies are built.
