file(REMOVE_RECURSE
  "CMakeFiles/flock_test.dir/flock_test.cc.o"
  "CMakeFiles/flock_test.dir/flock_test.cc.o.d"
  "flock_test"
  "flock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
