file(REMOVE_RECURSE
  "CMakeFiles/kv_test.dir/kv_test.cc.o"
  "CMakeFiles/kv_test.dir/kv_test.cc.o.d"
  "kv_test"
  "kv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
