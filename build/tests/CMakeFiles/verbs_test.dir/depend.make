# Empty dependencies file for verbs_test.
# This may be replaced when dependencies are built.
