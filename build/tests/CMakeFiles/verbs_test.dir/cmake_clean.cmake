file(REMOVE_RECURSE
  "CMakeFiles/verbs_test.dir/verbs_test.cc.o"
  "CMakeFiles/verbs_test.dir/verbs_test.cc.o.d"
  "verbs_test"
  "verbs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
