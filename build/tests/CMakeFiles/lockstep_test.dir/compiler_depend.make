# Empty compiler generated dependencies file for lockstep_test.
# This may be replaced when dependencies are built.
