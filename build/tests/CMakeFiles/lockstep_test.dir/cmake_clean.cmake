file(REMOVE_RECURSE
  "CMakeFiles/lockstep_test.dir/lockstep_test.cc.o"
  "CMakeFiles/lockstep_test.dir/lockstep_test.cc.o.d"
  "lockstep_test"
  "lockstep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockstep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
