# Empty dependencies file for combining_threads_test.
# This may be replaced when dependencies are built.
