file(REMOVE_RECURSE
  "CMakeFiles/combining_threads_test.dir/combining_threads_test.cc.o"
  "CMakeFiles/combining_threads_test.dir/combining_threads_test.cc.o.d"
  "combining_threads_test"
  "combining_threads_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combining_threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
