# Empty dependencies file for flock_edge_test.
# This may be replaced when dependencies are built.
