file(REMOVE_RECURSE
  "CMakeFiles/flock_edge_test.dir/flock_edge_test.cc.o"
  "CMakeFiles/flock_edge_test.dir/flock_edge_test.cc.o.d"
  "flock_edge_test"
  "flock_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
