# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(verbs_test "/root/repo/build/tests/verbs_test")
set_tests_properties(verbs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(wire_test "/root/repo/build/tests/wire_test")
set_tests_properties(wire_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(combining_threads_test "/root/repo/build/tests/combining_threads_test")
set_tests_properties(combining_threads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(flock_test "/root/repo/build/tests/flock_test")
set_tests_properties(flock_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kv_test "/root/repo/build/tests/kv_test")
set_tests_properties(kv_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(txn_test "/root/repo/build/tests/txn_test")
set_tests_properties(txn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build/tests/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lockstep_test "/root/repo/build/tests/lockstep_test")
set_tests_properties(lockstep_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;flock_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(flock_edge_test "/root/repo/build/tests/flock_edge_test")
set_tests_properties(flock_edge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;flock_test;/root/repo/tests/CMakeLists.txt;0;")
