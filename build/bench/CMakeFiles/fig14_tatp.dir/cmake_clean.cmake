file(REMOVE_RECURSE
  "CMakeFiles/fig14_tatp.dir/fig14_tatp.cc.o"
  "CMakeFiles/fig14_tatp.dir/fig14_tatp.cc.o.d"
  "fig14_tatp"
  "fig14_tatp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_tatp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
