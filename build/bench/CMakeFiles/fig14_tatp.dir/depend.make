# Empty dependencies file for fig14_tatp.
# This may be replaced when dependencies are built.
