# Empty dependencies file for fig6_flock_vs_erpc.
# This may be replaced when dependencies are built.
