file(REMOVE_RECURSE
  "CMakeFiles/fig6_flock_vs_erpc.dir/fig6_flock_vs_erpc.cc.o"
  "CMakeFiles/fig6_flock_vs_erpc.dir/fig6_flock_vs_erpc.cc.o.d"
  "fig6_flock_vs_erpc"
  "fig6_flock_vs_erpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_flock_vs_erpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
