file(REMOVE_RECURSE
  "CMakeFiles/fig11_thread_sched.dir/fig11_thread_sched.cc.o"
  "CMakeFiles/fig11_thread_sched.dir/fig11_thread_sched.cc.o.d"
  "fig11_thread_sched"
  "fig11_thread_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_thread_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
