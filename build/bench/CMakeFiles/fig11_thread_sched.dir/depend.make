# Empty dependencies file for fig11_thread_sched.
# This may be replaced when dependencies are built.
