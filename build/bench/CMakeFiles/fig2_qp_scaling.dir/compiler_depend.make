# Empty compiler generated dependencies file for fig2_qp_scaling.
# This may be replaced when dependencies are built.
