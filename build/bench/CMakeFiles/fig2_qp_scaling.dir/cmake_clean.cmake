file(REMOVE_RECURSE
  "CMakeFiles/fig2_qp_scaling.dir/fig2_qp_scaling.cc.o"
  "CMakeFiles/fig2_qp_scaling.dir/fig2_qp_scaling.cc.o.d"
  "fig2_qp_scaling"
  "fig2_qp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_qp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
