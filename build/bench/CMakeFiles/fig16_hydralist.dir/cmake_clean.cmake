file(REMOVE_RECURSE
  "CMakeFiles/fig16_hydralist.dir/fig16_hydralist.cc.o"
  "CMakeFiles/fig16_hydralist.dir/fig16_hydralist.cc.o.d"
  "fig16_hydralist"
  "fig16_hydralist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_hydralist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
