# Empty dependencies file for fig16_hydralist.
# This may be replaced when dependencies are built.
