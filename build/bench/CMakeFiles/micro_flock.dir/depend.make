# Empty dependencies file for micro_flock.
# This may be replaced when dependencies are built.
