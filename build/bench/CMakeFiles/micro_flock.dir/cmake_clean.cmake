file(REMOVE_RECURSE
  "CMakeFiles/micro_flock.dir/micro_flock.cc.o"
  "CMakeFiles/micro_flock.dir/micro_flock.cc.o.d"
  "micro_flock"
  "micro_flock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_flock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
