file(REMOVE_RECURSE
  "CMakeFiles/fig10_coalescing.dir/fig10_coalescing.cc.o"
  "CMakeFiles/fig10_coalescing.dir/fig10_coalescing.cc.o.d"
  "fig10_coalescing"
  "fig10_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
