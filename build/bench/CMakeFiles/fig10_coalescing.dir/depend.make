# Empty dependencies file for fig10_coalescing.
# This may be replaced when dependencies are built.
