file(REMOVE_RECURSE
  "CMakeFiles/ablation_sensitivity.dir/ablation_sensitivity.cc.o"
  "CMakeFiles/ablation_sensitivity.dir/ablation_sensitivity.cc.o.d"
  "ablation_sensitivity"
  "ablation_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
