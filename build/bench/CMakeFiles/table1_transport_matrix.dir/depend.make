# Empty dependencies file for table1_transport_matrix.
# This may be replaced when dependencies are built.
