file(REMOVE_RECURSE
  "CMakeFiles/table1_transport_matrix.dir/table1_transport_matrix.cc.o"
  "CMakeFiles/table1_transport_matrix.dir/table1_transport_matrix.cc.o.d"
  "table1_transport_matrix"
  "table1_transport_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_transport_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
