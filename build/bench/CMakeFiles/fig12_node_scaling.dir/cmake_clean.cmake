file(REMOVE_RECURSE
  "CMakeFiles/fig12_node_scaling.dir/fig12_node_scaling.cc.o"
  "CMakeFiles/fig12_node_scaling.dir/fig12_node_scaling.cc.o.d"
  "fig12_node_scaling"
  "fig12_node_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_node_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
