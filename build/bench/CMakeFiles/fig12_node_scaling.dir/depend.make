# Empty dependencies file for fig12_node_scaling.
# This may be replaced when dependencies are built.
