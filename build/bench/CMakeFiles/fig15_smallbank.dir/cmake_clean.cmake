file(REMOVE_RECURSE
  "CMakeFiles/fig15_smallbank.dir/fig15_smallbank.cc.o"
  "CMakeFiles/fig15_smallbank.dir/fig15_smallbank.cc.o.d"
  "fig15_smallbank"
  "fig15_smallbank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_smallbank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
