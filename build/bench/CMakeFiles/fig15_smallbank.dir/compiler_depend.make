# Empty compiler generated dependencies file for fig15_smallbank.
# This may be replaced when dependencies are built.
