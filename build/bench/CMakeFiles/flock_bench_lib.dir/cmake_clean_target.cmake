file(REMOVE_RECURSE
  "../lib/libflock_bench_lib.a"
)
