# Empty dependencies file for flock_bench_lib.
# This may be replaced when dependencies are built.
