file(REMOVE_RECURSE
  "../lib/libflock_bench_lib.a"
  "../lib/libflock_bench_lib.pdb"
  "CMakeFiles/flock_bench_lib.dir/rpc_bench_lib.cc.o"
  "CMakeFiles/flock_bench_lib.dir/rpc_bench_lib.cc.o.d"
  "CMakeFiles/flock_bench_lib.dir/txn_bench_lib.cc.o"
  "CMakeFiles/flock_bench_lib.dir/txn_bench_lib.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_bench_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
