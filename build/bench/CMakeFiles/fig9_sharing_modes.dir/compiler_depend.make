# Empty compiler generated dependencies file for fig9_sharing_modes.
# This may be replaced when dependencies are built.
