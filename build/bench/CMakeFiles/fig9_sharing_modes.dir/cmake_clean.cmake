file(REMOVE_RECURSE
  "CMakeFiles/fig9_sharing_modes.dir/fig9_sharing_modes.cc.o"
  "CMakeFiles/fig9_sharing_modes.dir/fig9_sharing_modes.cc.o.d"
  "fig9_sharing_modes"
  "fig9_sharing_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sharing_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
