// Figure 2 — the motivation experiment (§2.2).
//
//   (a) 16 B RDMA READs over RC from 22 client nodes into one server while
//       sweeping the total QP count: throughput peaks in the hundreds of QPs
//       and collapses once the server RNIC's connection cache thrashes.
//   (b) 16 B RPCs over UD while sweeping the number of senders: connection
//       state stays tiny, but the server's CPU (receive recycling, CQ
//       polling, per-packet software) saturates throughput with high remote
//       CPU utilization.
//
// Usage: fig2_qp_scaling [--measure_ms=3] [--warmup_ms=1]
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "bench/rpc_bench_lib.h"
#include "src/verbs/device.h"

namespace flock::bench {
namespace {

struct ReadShared {
  bool measuring = false;
  uint64_t completed = 0;
};

// One driver per QP: keeps `outstanding` 16 B READs in flight.
sim::Proc ReadDriver(verbs::Cluster& cluster, verbs::Qp* qp, verbs::Cq* cq,
                     uint64_t local_buf, uint64_t remote_addr, uint32_t rkey,
                     sim::Core& core, int outstanding, ReadShared* shared) {
  const sim::CostModel& cost = cluster.cost();
  auto post = [&](int i) {
    verbs::SendWr wr;
    wr.opcode = verbs::Opcode::kRead;
    wr.local_addr = local_buf + static_cast<uint64_t>(i) * 16;
    wr.length = 16;
    wr.remote_addr = remote_addr;
    wr.rkey = rkey;
    wr.signaled = true;
    FLOCK_CHECK(qp->PostSend(wr) == verbs::WcStatus::kSuccess);
  };
  co_await core.Work(static_cast<Nanos>(outstanding) * cost.cpu_wqe_prep +
                     cost.cpu_mmio_doorbell);
  for (int i = 0; i < outstanding; ++i) {
    post(i);
  }
  Nanos backoff = cost.cpu_cq_poll_empty;
  for (;;) {
    verbs::Completion wc;
    int done = 0;
    while (cq->Poll(&wc)) {
      ++done;
    }
    if (done > 0) {
      if (shared->measuring) {
        shared->completed += static_cast<uint64_t>(done);
      }
      co_await core.Work(static_cast<Nanos>(done) *
                             (cluster.cost().cpu_cqe_handle + cluster.cost().cpu_wqe_prep) +
                         cluster.cost().cpu_mmio_doorbell);
      for (int i = 0; i < done; ++i) {
        post(i);
      }
      backoff = cost.cpu_cq_poll_empty;
    } else {
      co_await core.Work(backoff);
      backoff = std::min<Nanos>(backoff * 2, 1000);
    }
  }
}

double RunRcReadPoint(int total_qps, Nanos warmup, Nanos measure, double* miss_ratio) {
  constexpr int kClients = 22;
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 1 + kClients, .cores_per_node = 32});
  // One registered region on the server, all reads target it.
  const uint64_t region = cluster.mem(0).Alloc(4096);
  verbs::Cq* server_scq = cluster.device(0).CreateCq();
  verbs::Cq* server_rcq = cluster.device(0).CreateCq();
  verbs::Mr mr = cluster.device(0).RegisterMr(region, 4096);

  ReadShared shared;
  const int qps_per_client = std::max(1, total_qps / kClients);
  for (int c = 0; c < kClients; ++c) {
    const int node = 1 + c;
    for (int q = 0; q < qps_per_client; ++q) {
      verbs::Cq* scq = cluster.device(node).CreateCq();
      verbs::Cq* rcq = cluster.device(node).CreateCq();
      auto [cqp, sqp] = cluster.ConnectRc(node, scq, rcq, 0, server_scq, server_rcq);
      const uint64_t buf = cluster.mem(node).Alloc(16 * 8);
      cluster.sim().Spawn(ReadDriver(cluster, cqp, scq, buf, region, mr.rkey,
                                     cluster.cpu(node).core(q), /*outstanding=*/8,
                                     &shared));
    }
  }

  cluster.sim().RunFor(warmup);
  cluster.device(0).qp_cache().ResetStats();
  shared.measuring = true;
  cluster.sim().RunFor(measure);
  shared.measuring = false;
  *miss_ratio = cluster.device(0).qp_cache().MissRatio();
  return static_cast<double>(shared.completed) /
         (static_cast<double>(measure) / 1e9) / 1e6;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "fig2_qp_scaling");
  const flock::Nanos warmup = flags.Int("warmup_ms", 1) * flock::kMillisecond;
  const flock::Nanos measure = flags.Int("measure_ms", 3) * flock::kMillisecond;

  PrintBanner("Figure 2(a): RDMA READ (RC) throughput vs #QPs, 22 clients, 16B");
  std::printf("%8s %12s %12s\n", "#QPs", "Mops/s", "cache-miss%");
  for (int qps : {22, 44, 88, 176, 352, 704, 1408, 2816}) {
    double miss = 0;
    const double mops = RunRcReadPoint(qps, warmup, measure, &miss);
    std::printf("%8d %12.1f %12.1f\n", qps, mops, miss * 100.0);
    std::printf("CSV,fig2a,%d,%.2f,%.3f\n", qps, mops, miss);
    json.Row({{"figure", "2a"}, {"qps", qps}, {"mops", mops}, {"miss_ratio", miss}});
  }

  PrintBanner("Figure 2(b): UD RPC throughput vs #senders, 22 clients, 16B");
  std::printf("%8s %12s %12s %12s\n", "#senders", "Mops/s", "srvCPU%", "timeouts");
  for (int senders : {22, 44, 88, 176, 352, 704, 1408, 2816}) {
    RpcBenchConfig config;
    config.num_clients = 22;
    config.threads_per_client = std::max(1, senders / 22);
    config.outstanding = 4;
    config.req_bytes = 16;
    config.resp_bytes = 16;
    config.handler_cpu = 20;
    config.ud_recv_pool = 256;  // no session flow control in the raw UD probe
    config.warmup = warmup;
    config.measure = measure;
    const RpcBenchResult result = RunUdRpc(config);
    std::printf("%8d %12.1f %12.1f %12lu\n", senders, result.mops,
                result.server_cpu * 100.0, static_cast<unsigned long>(result.timeouts));
    std::printf("CSV,fig2b,%d,%.2f,%.3f,%lu\n", senders, result.mops, result.server_cpu,
                static_cast<unsigned long>(result.timeouts));
    json.Row({{"figure", "2b"},
              {"senders", senders},
              {"mops", result.mops},
              {"server_cpu", result.server_cpu},
              {"timeouts", result.timeouts}});
  }
  return 0;
}
