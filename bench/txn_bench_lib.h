// Distributed-transaction benchmark world for Figs. 14 and 15 (§8.5.2):
// 3 servers (3-way replication) + 20 client nodes; each client thread runs
// 19 submitting coroutines (the paper's 20th processes responses). Runs the
// same OCC + 2PC + primary-backup protocol over FlockTX or the FaSST-like
// UD baseline.
#ifndef FLOCK_BENCH_TXN_BENCH_LIB_H_
#define FLOCK_BENCH_TXN_BENCH_LIB_H_

#include <cstdint>
#include <functional>

#include "src/common/rand.h"
#include "src/common/units.h"
#include "src/txn/coordinator.h"

namespace flock::bench {

enum class TxnSystem { kFlockTx, kFasst };

struct TxnBenchConfig {
  TxnSystem system = TxnSystem::kFlockTx;
  // Concurrency-control variant for the FlockTX system (ignored by the UD
  // baseline, whose transport has no one-sided path): kOcc (default),
  // kOccOneSidedRead, or kLockOneSided (ALock-style reader/writer locks).
  txn::TxMode mode = txn::TxMode::kOcc;
  int num_clients = 20;
  int threads_per_client = 4;
  int coroutines_per_thread = 19;
  size_t keys_per_partition = 1 << 20;
  uint32_t value_size = 40;
  Nanos warmup = 2 * kMillisecond;
  Nanos measure = 3 * kMillisecond;

  // Workload hooks: populate all keys; generate one transaction.
  std::function<void(const std::function<void(uint64_t)>&)> populate;
  std::function<txn::TxRequest(Rng&)> next;
};

struct TxnBenchResult {
  double mtps = 0;  // committed transactions per second / 1e6
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  uint64_t committed = 0;
  uint64_t aborts = 0;
  uint64_t failed = 0;  // transactions abandoned (e.g. UD packet loss)
};

TxnBenchResult RunTxnBench(const TxnBenchConfig& config);

}  // namespace flock::bench

#endif  // FLOCK_BENCH_TXN_BENCH_LIB_H_
