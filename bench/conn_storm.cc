// Connection-storm bench (DESIGN.md §13): thousands of short-lived clients
// Join the cluster, handshake a connection, fire a small RPC burst and Leave,
// at a configurable aggregate rate (default 1k joins/s). The per-session
// metric is time-to-first-RPC (TTFR): sim-ns from the session's start (before
// Join) until its first RPC response lands.
//
// Two configurations run in one binary over identical schedules:
//   * eager     — the storm flags off: every lane is created up front
//                 (CostModel::qp_create each), the handshake spends its
//                 ctrl_rtt before ConnectAsync returns, every Leave bumps the
//                 epoch and repartitions the server individually.
//   * optimized — qp_recycling + lazy_lanes + connect_piggyback on, plus a
//                 driver batching membership epochs in fixed windows: lane
//                 shells harvested from closed connections are reused
//                 (qp_reset instead of qp_create), only lane 0 exists until a
//                 second thread shows up, and the ConnectRequest rides with
//                 the first RPC.
//
// Each configuration runs twice; the two runs must produce identical
// fingerprints (determinism gate). The optimized run must beat the eager
// run's p99 TTFR by at least --min-improvement (default 2x), neither run may
// see any control-plane reject or lane failure, and the optimized run's
// end-of-storm census (live server lanes, sender slots, shell pools) must
// stay bounded no matter how many sessions ran.
//
// Usage:
//   conn_storm [--sessions=400] [--clients=8] [--gap-us=1000] [--lanes=4]
//              [--rpcs=4] [--payload=64] [--batch-window-us=1000]
//              [--min-improvement=2.0] [--json=BENCH_conn_storm.json]
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/ctrl/control_plane.h"
#include "src/flock/flock.h"

namespace flock::bench {
namespace {

struct StormParams {
  int sessions = 400;
  int clients = 8;
  Nanos gap = 1 * kMillisecond;  // spacing between session starts, cluster-wide
  uint32_t lanes = 4;
  int rpcs = 4;
  uint32_t payload = 64;
  Nanos batch_window = 1 * kMillisecond;  // 0 = no epoch batching
  bool recycle = false;
  bool lazy = false;
  bool piggyback = false;
};

struct StormResult {
  uint64_t done = 0;       // sessions that completed the full cycle
  uint64_t calls_ok = 0;
  uint64_t calls_fail = 0;
  std::vector<int64_t> ttfr;  // per-session, -1 if the session never got there
  int64_t ttfr_p50 = -1;
  int64_t ttfr_p99 = -1;
  double handshakes_per_sec = 0;
  Nanos storm_ns = 0;  // sim-span from first session start to last completion
  ctrl::ControlPlane::Stats cp;
  uint64_t epoch = 0;
  size_t replay_window = 0;
  uint64_t client_lane_failures = 0;
  // Server-side quarantines beyond the one each built lane gets at teardown
  // (TearDownSenders quarantines every live lane of a departing client, so
  // the expected total is exactly the number of server lanes ever built).
  uint64_t unexpected_server_failures = 0;
  uint64_t server_lane_failures = 0;
  uint64_t qps_created = 0;   // client + server
  uint64_t qps_recycled = 0;  // client + server
  size_t server_live_lanes = 0;
  size_t server_graveyard = 0;
  size_t server_pool = 0;
  size_t client_pool = 0;
  size_t sender_slots = 0;
  uint64_t fingerprint = 0;  // determinism: TTFRs + counters, order-sensitive
};

struct StormShared {
  sim::Simulator* sim = nullptr;
  ctrl::ControlPlane* cp = nullptr;
  const StormParams* p = nullptr;
  int server_node = 0;
  StormResult* r = nullptr;
  Nanos last_done_at = 0;
};

// One proc per client node: runs the node's share of the session schedule.
// Session k (global index) starts at k * gap, so the aggregate join rate is
// 1/gap regardless of how many client nodes carry the storm.
sim::Proc SessionDriver(StormShared& sh, FlockRuntime& rt, FlockThread* thread,
                        int client_index) {
  const StormParams& p = *sh.p;
  std::vector<uint8_t> payload(p.payload, 0x42);
  std::vector<uint8_t> resp;
  for (int s = client_index; s < p.sessions; s += p.clients) {
    const Nanos target = static_cast<Nanos>(s) * p.gap;
    if (sh.sim->Now() < target) {
      co_await sim::Delay(*sh.sim, target - sh.sim->Now());
    }
    const Nanos t0 = sh.sim->Now();
    sh.cp->Join(rt.node());
    Connection* conn = co_await rt.ConnectAsync(sh.server_node, p.lanes);
    for (int i = 0; i < p.rpcs; ++i) {
      if (co_await conn->Call(*thread, 1, payload.data(), p.payload, &resp)) {
        sh.r->calls_ok += 1;
      } else {
        sh.r->calls_fail += 1;
      }
      if (i == 0) {
        sh.r->ttfr[static_cast<size_t>(s)] =
            static_cast<int64_t>(sh.sim->Now() - t0);
      }
    }
    // Step off the response dispatcher's stack before closing: the last
    // Call's awaiter resumes inline from the dispatcher pass (in_dispatch is
    // still set), and CloseConnection only harvests quiescent lanes into the
    // recycling pool.
    co_await sim::Delay(*sh.sim, 1 * kMicrosecond);
    rt.CloseConnection(conn);
    sh.cp->Leave(rt.node());
    sh.r->done += 1;
    sh.last_done_at = sh.sim->Now();
  }
}

// Membership-epoch batching: Leaves (and Joins) landing inside one window are
// coalesced into a single epoch bump and one server repartition at window
// end. Membership itself flips immediately, so admission checks stay exact.
sim::Proc EpochBatchDriver(StormShared& sh) {
  const uint64_t total = static_cast<uint64_t>(sh.p->sessions);
  while (sh.r->done < total) {
    sh.cp->BeginEpochBatch();
    co_await sim::Delay(*sh.sim, sh.p->batch_window);
    sh.cp->EndEpochBatch();
  }
}

StormResult RunStorm(const StormParams& p) {
  verbs::Cluster cluster(verbs::Cluster::Config{
      .num_nodes = p.clients + 1, .cores_per_node = 16});
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);

  FlockConfig server_cfg;
  server_cfg.qp_recycling = p.recycle;  // the harvest side of the pool
  FlockRuntime server(cluster, 0, server_cfg);
  server.RegisterHandler(1, [](const uint8_t* req, uint32_t req_len,
                               uint8_t* resp, uint32_t, Nanos* cpu) -> uint32_t {
    *cpu = 50;
    std::memcpy(resp, req, req_len);
    return req_len;
  });
  server.StartServer(4);

  FlockConfig client_cfg;
  client_cfg.qp_recycling = p.recycle;
  client_cfg.lazy_lanes = p.lazy;
  client_cfg.connect_piggyback = p.piggyback;
  std::vector<std::unique_ptr<FlockRuntime>> clients;
  std::vector<FlockThread*> threads;
  for (int c = 0; c < p.clients; ++c) {
    clients.push_back(
        std::make_unique<FlockRuntime>(cluster, c + 1, client_cfg));
    clients.back()->StartClient();
    threads.push_back(clients.back()->CreateThread(2));
  }

  StormResult r;
  r.ttfr.assign(static_cast<size_t>(p.sessions), -1);
  StormShared sh;
  sh.sim = &cluster.sim();
  sh.cp = &cp;
  sh.p = &p;
  sh.server_node = 0;
  sh.r = &r;

  // The storm's client nodes start outside the cluster: each session Joins on
  // entry and Leaves on exit, the way the ISSUE's ephemeral clients would.
  for (int c = 0; c < p.clients; ++c) {
    cp.Leave(c + 1);
  }

  for (int c = 0; c < p.clients; ++c) {
    cluster.sim().Spawn(SessionDriver(sh, *clients[c], threads[c], c));
  }
  if (p.batch_window > 0) {
    cluster.sim().Spawn(EpochBatchDriver(sh));
  }

  // Run until every session completed (the server's schedulers tick forever,
  // so the simulation never goes idle on its own). The cap only trips if the
  // storm wedges — sessions not done by then fail the gates below.
  const Nanos cap = static_cast<Nanos>(p.sessions) * p.gap + 200 * kMillisecond;
  while (r.done < static_cast<uint64_t>(p.sessions) &&
         cluster.sim().Now() < cap) {
    cluster.sim().RunFor(1 * kMillisecond);
  }

  std::vector<int64_t> sorted;
  for (int64_t t : r.ttfr) {
    if (t >= 0) {
      sorted.push_back(t);
    }
  }
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty()) {
    r.ttfr_p50 = sorted[sorted.size() / 2];
    r.ttfr_p99 = sorted[sorted.size() * 99 / 100];
  }
  r.storm_ns = sh.last_done_at;
  r.handshakes_per_sec =
      r.storm_ns == 0 ? 0
                      : static_cast<double>(r.done) * 1e9 /
                            static_cast<double>(r.storm_ns);
  r.cp = cp.stats();
  r.epoch = cp.epoch();
  r.replay_window = cp.replay_window_entries();
  r.server_lane_failures = server.server_stats().lane_failures;
  r.qps_created = server.server_stats().qps_created;
  r.qps_recycled = server.server_stats().qps_recycled;
  const uint64_t server_lanes_built =
      server.server_stats().qps_created + server.server_stats().qps_recycled;
  r.unexpected_server_failures =
      r.server_lane_failures > server_lanes_built
          ? r.server_lane_failures - server_lanes_built
          : 0;
  r.server_live_lanes = server.ServerLiveLanes();
  r.server_graveyard = server.ServerGraveyardLanes();
  r.server_pool = server.ServerLanePool();
  r.sender_slots = server.ServerSenderSlots();
  for (const auto& client : clients) {
    r.client_lane_failures += client->client_stats().lane_failures;
    r.qps_created += client->client_stats().qps_created;
    r.qps_recycled += client->client_stats().qps_recycled;
    r.client_pool += client->ClientLanePool();
  }

  TraceHash hash;
  for (int64_t t : r.ttfr) {
    hash.Mix(static_cast<uint64_t>(t));
  }
  hash.Mix(r.done)
      .Mix(r.calls_ok)
      .Mix(r.calls_fail)
      .Mix(r.cp.calls)
      .Mix(r.epoch)
      .Mix(static_cast<uint64_t>(r.storm_ns))
      .Mix(r.qps_created)
      .Mix(r.qps_recycled);
  r.fingerprint = hash.value();
  return r;
}

uint64_t TotalRejects(const StormResult& r) {
  return r.cp.rejected_malformed + r.cp.rejected_replay +
         r.cp.rejected_no_endpoint + r.cp.rejected_not_member;
}

void PrintRow(const char* name, const StormResult& r) {
  std::printf("%-10s %9lu %12.0f %10.1f %10.1f %8lu %8lu %7lu %7lu\n", name,
              static_cast<unsigned long>(r.done), r.handshakes_per_sec,
              static_cast<double>(r.ttfr_p50) / 1e3,
              static_cast<double>(r.ttfr_p99) / 1e3,
              static_cast<unsigned long>(r.qps_created),
              static_cast<unsigned long>(r.qps_recycled),
              static_cast<unsigned long>(TotalRejects(r)),
              static_cast<unsigned long>(r.client_lane_failures +
                                         r.unexpected_server_failures));
  std::printf("CSV,conn_storm,%s,%lu,%.0f,%ld,%ld,%lu,%lu\n", name,
              static_cast<unsigned long>(r.done), r.handshakes_per_sec,
              static_cast<long>(r.ttfr_p50), static_cast<long>(r.ttfr_p99),
              static_cast<unsigned long>(r.qps_created),
              static_cast<unsigned long>(r.qps_recycled));
}

void AddRow(JsonDump* json, const char* name, const StormParams& p,
            const StormResult& r) {
  JsonRow row;
  row.Add("config", name)
      .Add("sessions", p.sessions)
      .Add("clients", p.clients)
      .Add("gap_us", static_cast<int64_t>(p.gap / kMicrosecond))
      .Add("lanes", p.lanes)
      .Add("rpcs_per_session", p.rpcs)
      .Add("batch_window_us", static_cast<int64_t>(p.batch_window / kMicrosecond))
      .Add("done", r.done)
      .Add("handshakes_per_sec", r.handshakes_per_sec)
      .Add("ttfr_p50_ns", r.ttfr_p50)
      .Add("ttfr_p99_ns", r.ttfr_p99)
      .Add("calls_ok", r.calls_ok)
      .Add("calls_fail", r.calls_fail)
      .Add("ctrl_calls", r.cp.calls)
      .Add("rejected_malformed", r.cp.rejected_malformed)
      .Add("rejected_replay", r.cp.rejected_replay)
      .Add("rejected_no_endpoint", r.cp.rejected_no_endpoint)
      .Add("rejected_not_member", r.cp.rejected_not_member)
      .Add("joins", r.cp.joins)
      .Add("leaves", r.cp.leaves)
      .Add("epoch", r.epoch)
      .Add("epoch_batches", r.cp.epoch_batches)
      .Add("replay_window_entries", static_cast<uint64_t>(r.replay_window))
      .Add("qps_created", r.qps_created)
      .Add("qps_recycled", r.qps_recycled)
      .Add("client_lane_failures", r.client_lane_failures)
      .Add("server_lane_failures", r.server_lane_failures)
      .Add("unexpected_server_failures", r.unexpected_server_failures)
      .Add("server_live_lanes", static_cast<uint64_t>(r.server_live_lanes))
      .Add("server_graveyard", static_cast<uint64_t>(r.server_graveyard))
      .Add("server_lane_pool", static_cast<uint64_t>(r.server_pool))
      .Add("client_lane_pool", static_cast<uint64_t>(r.client_pool))
      .Add("sender_slots", static_cast<uint64_t>(r.sender_slots))
      .Add("fingerprint", r.fingerprint);
  json->Row(row);
}

// Gates shared by both configurations: every session must complete with every
// RPC answered, and a storm of well-formed traffic must produce zero
// control-plane rejects and zero lane failures on either side.
bool CheckCommon(const char* name, const StormParams& p, const StormResult& r) {
  bool pass = true;
  if (r.done != static_cast<uint64_t>(p.sessions)) {
    std::printf("FAIL: %s completed %lu of %d sessions\n", name,
                static_cast<unsigned long>(r.done), p.sessions);
    pass = false;
  }
  if (r.calls_fail != 0) {
    std::printf("FAIL: %s saw %lu failed RPCs\n", name,
                static_cast<unsigned long>(r.calls_fail));
    pass = false;
  }
  if (TotalRejects(r) != 0) {
    std::printf("FAIL: %s control-plane rejects: malformed=%lu replay=%lu "
                "no_endpoint=%lu not_member=%lu\n",
                name, static_cast<unsigned long>(r.cp.rejected_malformed),
                static_cast<unsigned long>(r.cp.rejected_replay),
                static_cast<unsigned long>(r.cp.rejected_no_endpoint),
                static_cast<unsigned long>(r.cp.rejected_not_member));
    pass = false;
  }
  if (r.client_lane_failures != 0 || r.unexpected_server_failures != 0) {
    std::printf("FAIL: %s lane failures: client=%lu server(unexpected)=%lu\n",
                name, static_cast<unsigned long>(r.client_lane_failures),
                static_cast<unsigned long>(r.unexpected_server_failures));
    pass = false;
  }
  if (r.replay_window > ctrl::ControlPlane::kNonceWindow) {
    std::printf("FAIL: %s replay window grew to %lu entries\n", name,
                static_cast<unsigned long>(r.replay_window));
    pass = false;
  }
  return pass;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  StormParams p;
  p.sessions = static_cast<int>(flags.Int("sessions", 400));
  p.clients = static_cast<int>(flags.Int("clients", 8));
  p.gap = flags.Int("gap-us", 1000) * kMicrosecond;
  p.lanes = static_cast<uint32_t>(flags.Int("lanes", 4));
  p.rpcs = static_cast<int>(flags.Int("rpcs", 4));
  p.payload = static_cast<uint32_t>(flags.Int("payload", 64));
  const Nanos batch_window = flags.Int("batch-window-us", 1000) * kMicrosecond;
  const double min_improvement = flags.Double("min-improvement", 2.0);
  JsonDump json(flags.Str("json", "BENCH_conn_storm.json"), "conn_storm");

  StormParams eager = p;  // storm flags off, per-event epochs
  eager.batch_window = 0;
  StormParams optimized = p;
  optimized.recycle = true;
  optimized.lazy = true;
  optimized.piggyback = true;
  optimized.batch_window = batch_window;

  PrintBanner("conn_storm: Join -> connect -> RPC burst -> Leave under churn");
  std::printf("%d sessions across %d client nodes, one every %ld us "
              "(%.0f joins/s offered)\n",
              p.sessions, p.clients, static_cast<long>(p.gap / kMicrosecond),
              1e9 / static_cast<double>(p.gap));

  // Each configuration runs twice; run 2 must reproduce run 1 bit-for-bit.
  const StormResult e1 = RunStorm(eager);
  const StormResult e2 = RunStorm(eager);
  const StormResult o1 = RunStorm(optimized);
  const StormResult o2 = RunStorm(optimized);

  std::printf("%-10s %9s %12s %10s %10s %8s %8s %7s %7s\n", "config", "done",
              "handshakes/s", "p50_us", "p99_us", "qp_new", "qp_rec", "rej",
              "lane_f");
  PrintRow("eager", e1);
  PrintRow("optimized", o1);
  std::printf("epochs: eager %lu bumps, optimized %lu bumps in %lu batches\n",
              static_cast<unsigned long>(e1.epoch),
              static_cast<unsigned long>(o1.epoch),
              static_cast<unsigned long>(o1.cp.epoch_batches));
  AddRow(&json, "eager", eager, e1);
  AddRow(&json, "optimized", optimized, o1);

  bool pass = CheckCommon("eager", eager, e1);
  pass = CheckCommon("optimized", optimized, o1) && pass;
  if (e1.fingerprint != e2.fingerprint || o1.fingerprint != o2.fingerprint) {
    std::printf("FAIL: determinism: eager %016lx/%016lx optimized %016lx/%016lx\n",
                static_cast<unsigned long>(e1.fingerprint),
                static_cast<unsigned long>(e2.fingerprint),
                static_cast<unsigned long>(o1.fingerprint),
                static_cast<unsigned long>(o2.fingerprint));
    pass = false;
  }
  const double improvement =
      o1.ttfr_p99 <= 0 ? 0
                       : static_cast<double>(e1.ttfr_p99) /
                             static_cast<double>(o1.ttfr_p99);
  std::printf("p99 TTFR: eager %.1f us, optimized %.1f us -> %.1fx\n",
              static_cast<double>(e1.ttfr_p99) / 1e3,
              static_cast<double>(o1.ttfr_p99) / 1e3, improvement);
  if (improvement < min_improvement) {
    std::printf("FAIL: p99 TTFR improvement %.2fx below %.2fx\n", improvement,
                min_improvement);
    pass = false;
  }
  if (o1.qps_recycled == 0) {
    std::printf("FAIL: optimized run never recycled a QP\n");
    pass = false;
  }
  // Census bounds (optimized only — without recycling, retired lanes and
  // sender slots accumulate by design and the eager run documents it). After
  // the last Leave's teardown, no live server lanes remain, the shell pools
  // hold at most the storm's concurrent footprint, and sender slots were
  // reused rather than grown per session.
  const size_t slot_bound = static_cast<size_t>(p.clients) * 2;
  if (o1.server_live_lanes != 0) {
    std::printf("FAIL: %lu live server lanes after the storm\n",
                static_cast<unsigned long>(o1.server_live_lanes));
    pass = false;
  }
  if (o1.sender_slots > slot_bound) {
    std::printf("FAIL: sender slots grew to %lu (bound %lu)\n",
                static_cast<unsigned long>(o1.sender_slots),
                static_cast<unsigned long>(slot_bound));
    pass = false;
  }
  if (o1.server_pool > static_cast<size_t>(p.clients) * p.lanes ||
      o1.client_pool > static_cast<size_t>(p.clients) * p.lanes) {
    std::printf("FAIL: shell pools grew: server=%lu client=%lu\n",
                static_cast<unsigned long>(o1.server_pool),
                static_cast<unsigned long>(o1.client_pool));
    pass = false;
  }
  std::printf("%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) { return flock::bench::Main(argc, argv); }
