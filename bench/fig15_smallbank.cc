// Figure 15 — Smallbank over FlockTX vs the FaSST-like baseline (§8.5.2).
//
// Write-intensive (85% of transactions update keys; every write replicates
// 3-way), 4% of accounts receive 90% of accesses. Paper result: similar up to
// 2 threads; FlockTX up to 24% / 88% faster at 4 / 8 threads; FaSST loses
// packets at 16 threads.
//
// Accounts are scaled down 2x from the paper's 100k/thread: the 4%-hot/90%
// skew and the coordinator-to-hot-account ratio (what sets conflict rates)
// are preserved.
//
// Usage: fig15_smallbank [--measure_ms=3] [--warmup_ms=2] [--accounts_per_thread=5000]
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/txn_bench_lib.h"
#include "src/workloads/smallbank.h"

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "fig15_smallbank");
  const uint64_t accounts_per_thread =
      static_cast<uint64_t>(flags.Int("accounts_per_thread", 50000));

  PrintBanner("Figure 15: Smallbank, 20 clients + 3 servers, 3-way replication");
  std::printf("%8s | %11s %9s %9s %7s | %11s %9s %9s %7s\n", "thr/cli",
              "FLockTX Mtps", "p50(us)", "p99(us)", "abrt%", "FaSST Mtps",
              "p50(us)", "p99(us)", "lost");
  for (int threads : {1, 2, 4, 8, 16}) {
    const uint64_t accounts = accounts_per_thread * static_cast<uint64_t>(threads);
    flock::workloads::Smallbank bank(accounts);

    TxnBenchConfig config;
    config.threads_per_client = threads;
    config.keys_per_partition = accounts * 2;
    config.value_size = 16;
    config.warmup = flags.Int("warmup_ms", 2) * flock::kMillisecond;
    config.measure = flags.Int("measure_ms", 3) * flock::kMillisecond;
    config.populate = [&](const std::function<void(uint64_t)>& insert) {
      bank.Populate(insert);
    };
    config.next = [&bank](flock::Rng& rng) { return bank.Next(rng); };

    config.system = TxnSystem::kFlockTx;
    const TxnBenchResult fl = RunTxnBench(config);
    config.mode = flock::txn::TxMode::kLockOneSided;
    const TxnBenchResult lk = RunTxnBench(config);
    config.mode = flock::txn::TxMode::kOcc;
    config.system = TxnSystem::kFasst;
    const TxnBenchResult ud = RunTxnBench(config);

    const double fl_abort =
        fl.committed == 0
            ? 0.0
            : 100.0 * static_cast<double>(fl.aborts) /
                  static_cast<double>(fl.aborts + fl.committed);
    std::printf("%8d | %11.2f %9.1f %9.1f %6.1f%% | %11.2f %9.1f %9.1f %7lu\n",
                threads, fl.mtps, fl.p50_ns / 1e3, fl.p99_ns / 1e3, fl_abort,
                ud.mtps, ud.p50_ns / 1e3, ud.p99_ns / 1e3,
                static_cast<unsigned long>(ud.failed));
    std::printf("CSV,fig15,%d,flocktx,%.3f,%ld,%ld,%lu\n", threads, fl.mtps,
                static_cast<long>(fl.p50_ns), static_cast<long>(fl.p99_ns),
                static_cast<unsigned long>(fl.aborts));
    std::printf("CSV,fig15,%d,flocktx_lock,%.3f,%ld,%ld,%lu\n", threads, lk.mtps,
                static_cast<long>(lk.p50_ns), static_cast<long>(lk.p99_ns),
                static_cast<unsigned long>(lk.aborts));
    std::printf("CSV,fig15,%d,fasst,%.3f,%ld,%ld,%lu\n", threads, ud.mtps,
                static_cast<long>(ud.p50_ns), static_cast<long>(ud.p99_ns),
                static_cast<unsigned long>(ud.failed));
    json.Row({{"threads", threads}, {"system", "flocktx"}, {"mtps", fl.mtps},
              {"p50_ns", fl.p50_ns}, {"p99_ns", fl.p99_ns}, {"aborts", fl.aborts}});
    json.Row({{"threads", threads}, {"system", "flocktx_lock"}, {"mtps", lk.mtps},
              {"p50_ns", lk.p50_ns}, {"p99_ns", lk.p99_ns}, {"aborts", lk.aborts}});
    json.Row({{"threads", threads}, {"system", "fasst"}, {"mtps", ud.mtps},
              {"p50_ns", ud.p50_ns}, {"p99_ns", ud.p99_ns}, {"failed", ud.failed}});
    std::fflush(stdout);
  }
  return 0;
}
