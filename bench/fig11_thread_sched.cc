// Figure 11 — sender-side thread scheduling (§8.3.2).
//
// 23 clients x 32 threads; 10% of threads send large RPCs (512/768/1024 B),
// 90% send 64 B; responses are 64 B. Without sender-side scheduling, 2
// threads share a QP arbitrarily (head-of-line blocking); with it, the
// scheduler groups small-RPC threads together and isolates large payloads.
// Paper result: up to 1.5x throughput with similar latency.
//
// Usage: fig11_thread_sched [--measure_ms=3] [--warmup_ms=2]
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/rpc_bench_lib.h"

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "fig11_thread_sched");
  const flock::Nanos warmup = flags.Int("warmup_ms", 2) * flock::kMillisecond;
  const flock::Nanos measure = flags.Int("measure_ms", 3) * flock::kMillisecond;

  PrintBanner("Figure 11: sender-side thread scheduling, 10% large-payload threads");
  std::printf("%12s %16s %16s %10s\n", "large(B)", "without (Mops)", "with (Mops)",
              "speedup");
  for (uint32_t large : {512u, 768u, 1024u}) {
    RpcBenchConfig config;
    config.num_clients = 23;
    config.threads_per_client = 32;
    config.outstanding = 8;
    config.req_bytes = 64;
    config.resp_bytes = 64;
    config.large_thread_fraction = 0.10;
    config.large_req_bytes = large;
    config.warmup = warmup;
    config.measure = measure;
    // Threads share QPs 2:1 so placement matters (the paper's "without"
    // config shares a QP between two threads arbitrarily).
    config.lanes_per_connection = 16;

    config.flock.sender_thread_scheduling = false;
    const RpcBenchResult off = RunFlockRpc(config);
    config.flock.sender_thread_scheduling = true;
    const RpcBenchResult on = RunFlockRpc(config);

    std::printf("%12u %16.1f %16.1f %10.2f\n", large, off.mops, on.mops,
                off.mops > 0 ? on.mops / off.mops : 0.0);
    std::printf("CSV,fig11,%u,%.2f,%.2f\n", large, off.mops, on.mops);
    json.Row({{"large_threads", large},
              {"sched_off_mops", off.mops},
              {"sched_on_mops", on.mops}});
    std::fflush(stdout);
  }
  return 0;
}
