// Tenant-isolation bench (DESIGN.md §15): a well-behaved victim tenant shares
// one server with a misbehaving attacker tenant, and the tenancy layer —
// admission control, weighted-fair credit clipping, byte quotas and the
// misbehaving-tenant throttle — must keep the victim's latency and throughput
// within a bounded distance of its solo (attacker-free) run.
//
// Profiles, all over identical victim schedules:
//   * solo       — the victim runs alone; its p50/p99 and throughput are the
//                  baseline every gate below compares against.
//   * hotloop    — 8 attacker threads in a closed loop of small RPCs, no
//                  think time: a classic credit/CPU flood.
//   * oversized  — 4 attacker threads hammering near-max payloads: a byte
//                  flood that trips the quota with few requests.
//   * churn      — the attacker connects, bursts, disconnects in a loop:
//                  admission + teardown pressure on the handshake path and
//                  the recycling pools.
//   * open       — hotloop again with tenancy OFF: the unprotected reference,
//                  reported (and written to JSON) but not gated.
//
// Every gated profile runs twice and must produce identical fingerprints
// (determinism gate). Gates: victim p99 under each attack stays within
// --max-p99-ratio of solo (default 2x), victim throughput stays above
// --min-tput-frac of solo (default 0.8), no victim RPC ever fails, the
// attacker still makes progress (isolation must not mean starvation), the
// flood profiles actually engage the throttle, and after teardown the
// registry holds zero live connections/lanes for both tenants with zero
// unknown-tenant rejects.
//
// Usage:
//   tenant_isolation [--rpcs=1500] [--victim-threads=2] [--think-us=15]
//                    [--payload=64] [--max-p99-ratio=2.0]
//                    [--min-tput-frac=0.8] [--json=BENCH_tenant_isolation.json]
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/ctrl/control_plane.h"
#include "src/flock/flock.h"
#include "src/tenant/tenant.h"

namespace flock::bench {
namespace {

constexpr tenant::TenantId kVictim = 1;
constexpr tenant::TenantId kAttacker = 2;

enum class Attack { kNone, kHotLoop, kOversized, kChurn };

struct IsoParams {
  int rpcs = 1500;  // per victim thread
  int victim_threads = 2;
  Nanos think = 15 * kMicrosecond;
  uint32_t payload = 64;
  Attack attack = Attack::kNone;
  bool tenancy = true;
};

struct IsoResult {
  uint64_t victim_ok = 0;
  uint64_t victim_fail = 0;
  uint64_t attacker_ok = 0;
  uint64_t attacker_fail = 0;
  uint64_t attacker_cycles = 0;  // churn: completed connect->burst->close
  int64_t p50 = -1;
  int64_t p99 = -1;
  double victim_rps = 0;
  Nanos span = 0;  // start of victim traffic to its last completion
  // Tenancy census at end of run (before the world is torn down).
  uint64_t attacker_throttle_events = 0;
  uint64_t attacker_quota_stalls = 0;
  uint64_t attacker_credit_stalls = 0;
  uint64_t unknown_rejects = 0;
  uint32_t victim_live_conns = 0;
  uint32_t victim_live_lanes = 0;
  uint32_t attacker_live_conns = 0;
  uint32_t attacker_live_lanes = 0;
  uint64_t fingerprint = 0;
};

struct IsoShared {
  sim::Simulator* sim = nullptr;
  const IsoParams* p = nullptr;
  IsoResult* r = nullptr;
  bool stop = false;  // raised once every victim thread finished
  int victims_done = 0;
  Nanos last_victim_done = 0;
  std::vector<int64_t>* latencies = nullptr;
};

sim::Proc VictimLoop(IsoShared& sh, Connection* conn, FlockThread* thread,
                     size_t slot) {
  const IsoParams& p = *sh.p;
  std::vector<uint8_t> payload(p.payload, 0x42);
  std::vector<uint8_t> resp;
  for (int i = 0; i < p.rpcs; ++i) {
    const Nanos t0 = sh.sim->Now();
    if (co_await conn->Call(*thread, 1, payload.data(), p.payload, &resp)) {
      sh.r->victim_ok += 1;
      (*sh.latencies)[slot * static_cast<size_t>(p.rpcs) +
                      static_cast<size_t>(i)] =
          static_cast<int64_t>(sh.sim->Now() - t0);
    } else {
      sh.r->victim_fail += 1;
    }
    co_await sim::Delay(*sh.sim, p.think);
  }
  sh.victims_done += 1;
  sh.last_victim_done = sh.sim->Now();
}

// hotloop / oversized: closed loop, no think time, until the victim is done.
sim::Proc FloodAttacker(IsoShared& sh, Connection* conn, FlockThread* thread,
                        uint32_t payload_bytes) {
  std::vector<uint8_t> payload(payload_bytes, 0xAB);
  std::vector<uint8_t> resp;
  while (!sh.stop) {
    if (co_await conn->Call(*thread, 1, payload.data(), payload_bytes, &resp)) {
      sh.r->attacker_ok += 1;
    } else {
      sh.r->attacker_fail += 1;
    }
  }
}

// churn: connect -> small burst -> disconnect, in a loop. Exercises admission
// and the disconnect/recycling path while the victim runs.
sim::Proc ChurnAttacker(IsoShared& sh, FlockRuntime& rt, FlockThread* thread,
                        int server_node) {
  std::vector<uint8_t> payload(64, 0xAB);
  std::vector<uint8_t> resp;
  while (!sh.stop) {
    Connection* conn = co_await rt.ConnectAsync(server_node, 4, kAttacker);
    if (conn == nullptr) {
      co_await sim::Delay(*sh.sim, 10 * kMicrosecond);
      continue;
    }
    for (int i = 0; i < 16 && !sh.stop; ++i) {
      if (co_await conn->Call(*thread, 1, payload.data(), 64, &resp)) {
        sh.r->attacker_ok += 1;
      } else {
        sh.r->attacker_fail += 1;
      }
    }
    // Step off the dispatcher's stack before closing (see conn_storm).
    co_await sim::Delay(*sh.sim, 1 * kMicrosecond);
    rt.CloseConnection(conn);
    sh.r->attacker_cycles += 1;
  }
}

IsoResult RunProfile(const IsoParams& p, JsonDump* tenant_rows_json) {
  verbs::Cluster::Config cc;
  cc.num_nodes = 3;  // 0 = server, 1 = victim, 2 = attacker
  cc.cores_per_node = 16;
  verbs::Cluster cluster(cc);
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);

  // Policies are registered identically in every profile (including solo), so
  // the victim's weighted share of the window pool is the same everywhere and
  // solo-vs-attacked comparisons isolate the attacker's traffic, not a
  // registry delta.
  if (p.tenancy) {
    tenant::TenantPolicy victim;
    victim.weight = 4;
    victim.max_lanes = 8;
    victim.max_connections = 4;
    cp.tenants().Register(kVictim, victim);
    tenant::TenantPolicy attacker;
    attacker.weight = 1;
    attacker.credit_budget = 64;
    attacker.byte_quota = 16 * 1024;
    attacker.max_lanes = 4;
    attacker.max_connections = 2;
    cp.tenants().Register(kAttacker, attacker);
  }

  FlockConfig cfg;
  cfg.tenancy = p.tenancy;
  cfg.qp_recycling = true;  // churn rides the shell pools
  FlockRuntime server(cluster, 0, cfg);
  server.RegisterHandler(1, [](const uint8_t* req, uint32_t req_len,
                               uint8_t* resp, uint32_t, Nanos* cpu) -> uint32_t {
    *cpu = 200;
    std::memcpy(resp, req, req_len);
    return req_len;
  });
  server.StartServer(4);

  FlockRuntime victim_rt(cluster, 1, cfg);
  victim_rt.StartClient();
  FlockRuntime attacker_rt(cluster, 2, cfg);
  attacker_rt.StartClient();

  IsoResult r;
  std::vector<int64_t> latencies(
      static_cast<size_t>(p.victim_threads) * static_cast<size_t>(p.rpcs), -1);
  IsoShared sh;
  sh.sim = &cluster.sim();
  sh.p = &p;
  sh.r = &r;
  sh.latencies = &latencies;

  Connection* victim_conn =
      victim_rt.Connect(server, 4, p.tenancy ? kVictim : tenant::kDefaultTenant);
  for (int t = 0; t < p.victim_threads; ++t) {
    cluster.sim().Spawn(VictimLoop(sh, victim_conn, victim_rt.CreateThread(t),
                                   static_cast<size_t>(t)),
                        /*node=*/1);
  }

  Connection* attacker_conn = nullptr;
  const tenant::TenantId atk_id =
      p.tenancy ? kAttacker : tenant::kDefaultTenant;
  switch (p.attack) {
    case Attack::kNone:
      break;
    case Attack::kHotLoop:
      attacker_conn = attacker_rt.Connect(server, 4, atk_id);
      for (int t = 0; t < 8; ++t) {
        cluster.sim().Spawn(
            FloodAttacker(sh, attacker_conn, attacker_rt.CreateThread(t), 64),
            /*node=*/2);
      }
      break;
    case Attack::kOversized:
      attacker_conn = attacker_rt.Connect(server, 4, atk_id);
      for (int t = 0; t < 4; ++t) {
        cluster.sim().Spawn(FloodAttacker(sh, attacker_conn,
                                          attacker_rt.CreateThread(t), 4096),
                            /*node=*/2);
      }
      break;
    case Attack::kChurn:
      for (int t = 0; t < 4; ++t) {
        cluster.sim().Spawn(
            ChurnAttacker(sh, attacker_rt, attacker_rt.CreateThread(t), 0),
            /*node=*/2);
      }
      break;
  }

  // Run until the victim finishes its fixed schedule; the cap only trips if
  // isolation failed badly enough to wedge the victim.
  const Nanos cap =
      static_cast<Nanos>(p.rpcs) * (p.think + 1 * kMillisecond);
  while (sh.victims_done < p.victim_threads && cluster.sim().Now() < cap) {
    cluster.sim().RunFor(1 * kMillisecond);
  }
  sh.stop = true;
  cluster.sim().RunFor(2 * kMillisecond);  // attackers drain their last call

  // Orderly teardown while the world is still up: both tenants' admission
  // accounting must return to zero.
  victim_rt.CloseConnection(victim_conn);
  if (attacker_conn != nullptr) {
    attacker_rt.CloseConnection(attacker_conn);
  }
  cluster.sim().RunFor(1 * kMillisecond);

  std::vector<int64_t> sorted;
  for (int64_t l : latencies) {
    if (l >= 0) {
      sorted.push_back(l);
    }
  }
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty()) {
    r.p50 = sorted[sorted.size() / 2];
    r.p99 = sorted[sorted.size() * 99 / 100];
  }
  r.span = sh.last_victim_done;
  r.victim_rps = r.span == 0 ? 0
                             : static_cast<double>(r.victim_ok) * 1e9 /
                                   static_cast<double>(r.span);
  if (p.tenancy) {
    const tenant::TenantRegistry& reg = cp.tenants();
    if (const tenant::TenantCounters* c = reg.CountersFor(kAttacker)) {
      r.attacker_throttle_events = c->throttle_events;
      r.attacker_quota_stalls = c->quota_stalls;
      r.attacker_credit_stalls = c->credit_stalls;
    }
    r.unknown_rejects = reg.unknown_rejects();
    r.victim_live_conns = reg.LiveConnections(kVictim);
    r.victim_live_lanes = reg.LiveLanes(kVictim);
    r.attacker_live_conns = reg.LiveConnections(kAttacker);
    r.attacker_live_lanes = reg.LiveLanes(kAttacker);
    if (tenant_rows_json != nullptr) {
      AppendTenantRows(reg,
                       static_cast<double>(cluster.sim().Now()) / 1e9,
                       tenant_rows_json);
    }
  }

  TraceHash hash;
  for (int64_t l : latencies) {
    hash.Mix(static_cast<uint64_t>(l));
  }
  hash.Mix(r.victim_ok)
      .Mix(r.victim_fail)
      .Mix(r.attacker_ok)
      .Mix(r.attacker_fail)
      .Mix(r.attacker_cycles)
      .Mix(static_cast<uint64_t>(r.span))
      .Mix(r.attacker_throttle_events);
  r.fingerprint = hash.value();
  return r;
}

void PrintRow(const char* name, const IsoResult& r) {
  std::printf("%-10s %9lu %6lu %10.1f %10.1f %10.0f %9lu %8lu %8lu\n", name,
              static_cast<unsigned long>(r.victim_ok),
              static_cast<unsigned long>(r.victim_fail),
              static_cast<double>(r.p50) / 1e3,
              static_cast<double>(r.p99) / 1e3, r.victim_rps,
              static_cast<unsigned long>(r.attacker_ok),
              static_cast<unsigned long>(r.attacker_throttle_events),
              static_cast<unsigned long>(r.attacker_quota_stalls +
                                         r.attacker_credit_stalls));
  std::printf("CSV,tenant_isolation,%s,%lu,%ld,%ld,%.0f,%lu\n", name,
              static_cast<unsigned long>(r.victim_ok),
              static_cast<long>(r.p50), static_cast<long>(r.p99), r.victim_rps,
              static_cast<unsigned long>(r.attacker_ok));
}

void AddRow(JsonDump* json, const char* name, const IsoParams& p,
            const IsoResult& r, const IsoResult& solo) {
  JsonRow row;
  row.Add("config", name)
      .Add("tenancy", p.tenancy ? 1 : 0)
      .Add("victim_threads", p.victim_threads)
      .Add("rpcs_per_thread", p.rpcs)
      .Add("think_us", static_cast<int64_t>(p.think / kMicrosecond))
      .Add("payload_bytes", p.payload)
      .Add("victim_ok", r.victim_ok)
      .Add("victim_fail", r.victim_fail)
      .Add("victim_p50_ns", r.p50)
      .Add("victim_p99_ns", r.p99)
      .Add("victim_rps", r.victim_rps)
      .Add("p99_ratio_vs_solo",
           solo.p99 > 0 ? static_cast<double>(r.p99) /
                              static_cast<double>(solo.p99)
                        : 0.0)
      .Add("tput_frac_vs_solo",
           solo.victim_rps > 0 ? r.victim_rps / solo.victim_rps : 0.0)
      .Add("attacker_ok", r.attacker_ok)
      .Add("attacker_fail", r.attacker_fail)
      .Add("attacker_cycles", r.attacker_cycles)
      .Add("attacker_throttle_events", r.attacker_throttle_events)
      .Add("attacker_quota_stalls", r.attacker_quota_stalls)
      .Add("attacker_credit_stalls", r.attacker_credit_stalls)
      .Add("unknown_rejects", r.unknown_rejects)
      .Add("fingerprint", r.fingerprint);
  json->Row(row);
}

// Gates shared by every tenancy-on profile.
bool CheckCommon(const char* name, const IsoParams& p, const IsoResult& r) {
  bool pass = true;
  const uint64_t expected =
      static_cast<uint64_t>(p.victim_threads) * static_cast<uint64_t>(p.rpcs);
  if (r.victim_ok != expected || r.victim_fail != 0) {
    std::printf("FAIL: %s victim completed %lu/%lu with %lu failures\n", name,
                static_cast<unsigned long>(r.victim_ok),
                static_cast<unsigned long>(expected),
                static_cast<unsigned long>(r.victim_fail));
    pass = false;
  }
  if (r.unknown_rejects != 0) {
    std::printf("FAIL: %s saw %lu unknown-tenant rejects\n", name,
                static_cast<unsigned long>(r.unknown_rejects));
    pass = false;
  }
  if (r.victim_live_conns != 0 || r.victim_live_lanes != 0 ||
      r.attacker_live_conns != 0 || r.attacker_live_lanes != 0) {
    std::printf("FAIL: %s leaked accounting: victim %u conns/%u lanes, "
                "attacker %u conns/%u lanes\n",
                name, r.victim_live_conns, r.victim_live_lanes,
                r.attacker_live_conns, r.attacker_live_lanes);
    pass = false;
  }
  return pass;
}

bool CheckIsolation(const char* name, const IsoResult& r, const IsoResult& solo,
                    double max_p99_ratio, double min_tput_frac,
                    bool expect_throttle) {
  bool pass = true;
  const double ratio = solo.p99 > 0 ? static_cast<double>(r.p99) /
                                          static_cast<double>(solo.p99)
                                    : 0.0;
  const double frac =
      solo.victim_rps > 0 ? r.victim_rps / solo.victim_rps : 0.0;
  if (ratio > max_p99_ratio) {
    std::printf("FAIL: %s victim p99 %.1f us is %.2fx solo (bound %.2fx)\n",
                name, static_cast<double>(r.p99) / 1e3, ratio, max_p99_ratio);
    pass = false;
  }
  if (frac < min_tput_frac) {
    std::printf("FAIL: %s victim throughput %.0f rps is %.2fx solo "
                "(bound %.2fx)\n",
                name, r.victim_rps, frac, min_tput_frac);
    pass = false;
  }
  if (r.attacker_ok == 0) {
    std::printf("FAIL: %s starved the attacker outright\n", name);
    pass = false;
  }
  if (expect_throttle && r.attacker_throttle_events == 0) {
    std::printf("FAIL: %s never engaged the throttle\n", name);
    pass = false;
  }
  return pass;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  IsoParams base;
  base.rpcs = static_cast<int>(flags.Int("rpcs", 1500));
  base.victim_threads = static_cast<int>(flags.Int("victim-threads", 2));
  base.think = flags.Int("think-us", 15) * kMicrosecond;
  base.payload = static_cast<uint32_t>(flags.Int("payload", 64));
  const double max_p99_ratio = flags.Double("max-p99-ratio", 2.0);
  const double min_tput_frac = flags.Double("min-tput-frac", 0.8);
  JsonDump json(flags.Str("json", "BENCH_tenant_isolation.json"),
                "tenant_isolation");

  PrintBanner("tenant_isolation: victim vs misbehaving tenants");
  std::printf("victim: %d threads x %d RPCs, %ld us think, %u B payload\n",
              base.victim_threads, base.rpcs,
              static_cast<long>(base.think / kMicrosecond), base.payload);

  struct Profile {
    const char* name;
    Attack attack;
    bool expect_throttle;
  };
  const Profile kProfiles[] = {
      {"hotloop", Attack::kHotLoop, true},
      {"oversized", Attack::kOversized, true},
      {"churn", Attack::kChurn, false},
  };

  // Solo baseline (run twice: determinism gate applies to it too).
  IsoParams solo_p = base;
  const IsoResult solo = RunProfile(solo_p, nullptr);
  const IsoResult solo2 = RunProfile(solo_p, nullptr);

  std::printf("%-10s %9s %6s %10s %10s %10s %9s %8s %8s\n", "config", "v_ok",
              "v_fail", "p50_us", "p99_us", "victim_rps", "atk_ok", "throttl",
              "stalls");
  PrintRow("solo", solo);
  AddRow(&json, "solo", solo_p, solo, solo);

  bool pass = CheckCommon("solo", solo_p, solo);
  if (solo.fingerprint != solo2.fingerprint) {
    std::printf("FAIL: solo runs diverged: %016lx vs %016lx\n",
                static_cast<unsigned long>(solo.fingerprint),
                static_cast<unsigned long>(solo2.fingerprint));
    pass = false;
  }

  for (const Profile& prof : kProfiles) {
    IsoParams p = base;
    p.attack = prof.attack;
    // The hotloop run's end-of-run tenant census goes into the JSON as the
    // representative per-tenant rows.
    const bool dump_tenants = prof.attack == Attack::kHotLoop;
    const IsoResult r1 = RunProfile(p, dump_tenants ? &json : nullptr);
    const IsoResult r2 = RunProfile(p, nullptr);
    PrintRow(prof.name, r1);
    AddRow(&json, prof.name, p, r1, solo);
    pass = CheckCommon(prof.name, p, r1) && pass;
    pass = CheckIsolation(prof.name, r1, solo, max_p99_ratio, min_tput_frac,
                          prof.expect_throttle) &&
           pass;
    if (r1.fingerprint != r2.fingerprint) {
      std::printf("FAIL: %s runs diverged: %016lx vs %016lx\n", prof.name,
                  static_cast<unsigned long>(r1.fingerprint),
                  static_cast<unsigned long>(r2.fingerprint));
      pass = false;
    }
  }

  // Unprotected reference: same hotloop with tenancy off. Reported only — it
  // documents what the gates are protecting against.
  IsoParams open_p = base;
  open_p.attack = Attack::kHotLoop;
  open_p.tenancy = false;
  const IsoResult open = RunProfile(open_p, nullptr);
  PrintRow("open", open);
  AddRow(&json, "open", open_p, open, solo);
  std::printf("p99 vs solo: protected hotloop within %.2fx budget, "
              "unprotected %.2fx\n",
              max_p99_ratio,
              solo.p99 > 0 ? static_cast<double>(open.p99) /
                                 static_cast<double>(solo.p99)
                           : 0.0);

  std::printf("%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) { return flock::bench::Main(argc, argv); }
