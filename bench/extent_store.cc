// Extent-store workload — the segmentation path under a storage-shaped mix.
//
// A server fronts a flat store of fixed-size extents (default 1 MB). Clients
// run two traffic classes against it over one connection:
//
//   metadata — 128 B lookup RPCs, latency-sensitive (the namespace / inode
//              traffic of a storage front-end).
//   extents  — whole-extent reads and writes, bandwidth-sensitive. Both
//              directions exercise the scatter-gather + segmentation path
//              (DESIGN.md §16): requests gather zero-copy from caller slices,
//              payloads above segment_threshold travel as chunk trains, and
//              responses land directly in caller buffers.
//
// Two configurations per run:
//
//   solo     — metadata threads only: the clean-room metadata p99 baseline.
//   bimodal  — metadata threads plus extent threads on the same lanes: the
//              number that matters is how much the chunk trains inflate the
//              metadata p99. Chunk interleaving (a train releases the lane
//              between chunks) is what keeps the ratio bounded.
//
// scripts/check_perf.py --extent-store gates: extent size >= 1 MB, sustained
// extent bandwidth above a floor, and bimodal metadata p99 <= 2x solo.
// Simulated-time gates: deterministic, host-speed independent, exact.
//
// Usage: extent_store [--extent_kb=1024] [--extents=64] [--extent_threads=2]
//                     [--meta_threads=4] [--lanes=4] [--server_cores=4]
//                     [--warmup_ms=2] [--measure_ms=6] [--json=<path>]
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/flock/flock.h"

namespace flock::bench {
namespace {

constexpr uint16_t kMetaRpc = 1;
constexpr uint16_t kReadRpc = 2;   // req [id u64] -> resp [extent bytes]
constexpr uint16_t kWriteRpc = 3;  // req [id u64][extent bytes] -> resp [ok u64]
constexpr uint32_t kMetaBytes = 128;

// Server-side CPU charge for touching `len` payload bytes: a fixed dispatch
// cost plus ~64 GB/s of memcpy. Keeps the bench NIC/wire-bound for extents
// (the paper's regime) while the metadata class stays CPU-cheap.
Nanos TouchCost(uint32_t len) { return 300 + len / 64; }

struct Shared {
  bool measuring = false;
  uint64_t meta_ops = 0;
  uint64_t extent_ops = 0;
  uint64_t extent_bytes = 0;  // payload bytes moved in the measured window
  uint64_t failures = 0;
  Histogram meta_latency;
  Histogram extent_latency;
};

sim::Proc MetaWorker(verbs::Cluster* cluster, Connection* conn,
                     FlockThread* thread, uint64_t seed, Shared* shared) {
  std::vector<uint8_t> req(kMetaBytes);
  std::vector<uint8_t> resp(kMetaBytes);
  for (uint32_t i = 0; i < kMetaBytes; ++i) {
    req[i] = static_cast<uint8_t>(seed + i);
  }
  LatencyRecorder lat(cluster->sim(), &shared->meta_latency);
  for (;;) {
    uint32_t resp_len = 0;
    const Nanos start = lat.Start();
    const bool ok = co_await conn->Call(*thread, kMetaRpc,
                                        PayloadRef(req.data(), kMetaBytes),
                                        resp.data(), kMetaBytes, &resp_len);
    if (shared->measuring) {
      shared->meta_ops += 1;
      shared->failures += ok ? 0 : 1;
      lat.Record(start);
    }
  }
}

sim::Proc ExtentWorker(verbs::Cluster* cluster, Connection* conn,
                       FlockThread* thread, uint32_t extent_bytes,
                       uint64_t num_extents, uint64_t seed, Shared* shared) {
  Rng rng(seed);
  // Caller-owned transfer buffers, hoisted: the whole loop is allocation-free
  // in steady state (AllocTest.SteadyStateExtentsAreAllocationFree).
  std::vector<uint8_t> write_buf(8 + extent_bytes);
  std::vector<uint8_t> read_buf(extent_bytes);
  std::vector<uint8_t> ack(8);
  for (uint32_t i = 0; i < extent_bytes; ++i) {
    write_buf[8 + i] = static_cast<uint8_t>(seed + i);
  }
  LatencyRecorder lat(cluster->sim(), &shared->extent_latency);
  for (;;) {
    const uint64_t id = rng.NextBelow(num_extents);
    const bool is_read = rng.NextBelow(2) == 0;
    uint32_t resp_len = 0;
    const Nanos start = lat.Start();
    bool ok;
    if (is_read) {
      ok = co_await conn->Call(
          *thread, kReadRpc, PayloadRef(reinterpret_cast<const uint8_t*>(&id), 8),
          read_buf.data(), extent_bytes, &resp_len);
    } else {
      // Header and payload as two slices: the id is gathered from this
      // frame, the extent from the hoisted buffer — no concatenation copy.
      std::memcpy(write_buf.data(), &id, 8);
      PayloadRef req;
      req.Add(write_buf.data(), 8);
      req.Add(write_buf.data() + 8, extent_bytes);
      ok = co_await conn->Call(*thread, kWriteRpc, req, ack.data(), 8, &resp_len);
    }
    if (shared->measuring) {
      shared->extent_ops += 1;
      shared->extent_bytes += is_read ? resp_len : extent_bytes;
      shared->failures += ok ? 0 : 1;
      lat.Record(start);
    }
  }
}

struct RunConfig {
  uint32_t extent_bytes = 1024 * 1024;
  uint64_t num_extents = 64;
  int extent_threads = 2;
  int meta_threads = 4;
  uint32_t lanes = 4;
  int server_cores = 4;
  Nanos warmup = 2 * kMillisecond;
  Nanos measure = 6 * kMillisecond;
};

struct RunResult {
  double extent_gbps = 0;  // payload GB/s sustained in the measured window
  uint64_t extent_ops = 0;
  int64_t extent_p50 = 0, extent_p99 = 0;
  double meta_kops = 0;
  int64_t meta_p50 = 0, meta_p99 = 0;
  uint64_t failures = 0;
};

RunResult Run(const RunConfig& rc, bool with_extents) {
  // Per-packet QP arbitration on the wire: without it a 1 MB chunk train
  // holds the whole-message FIFO link for its full serialization and every
  // metadata RPC behind it eats the burst in its tail.
  sim::CostModel cost;
  cost.link_arb_quantum_bytes = cost.mtu_bytes;
  verbs::Cluster cluster(verbs::Cluster::Config{
      .num_nodes = 2, .cores_per_node = 32, .cost = cost});

  FlockConfig config;
  config.max_payload = 8 + rc.extent_bytes;  // write req = [id][extent]
  config.segment_threshold = 8 * 1024;
  FlockRuntime server(cluster, 0, config);

  // The extent store: flat backing memory, deterministic initial contents.
  std::vector<uint8_t> store(rc.num_extents * rc.extent_bytes);
  for (size_t i = 0; i < store.size(); ++i) {
    store[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  server.RegisterHandler(kMetaRpc, [](const uint8_t* req, uint32_t len,
                                      uint8_t* resp, uint32_t, Nanos* cpu) {
    std::memcpy(resp, req, len);
    *cpu = TouchCost(len);
    return len;
  });
  const uint32_t extent_bytes = rc.extent_bytes;
  const uint64_t num_extents = rc.num_extents;
  server.RegisterHandler(
      kReadRpc, [&store, extent_bytes, num_extents](
                    const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t,
                    Nanos* cpu) -> uint32_t {
        uint64_t id = 0;
        std::memcpy(&id, req, 8);
        FLOCK_CHECK_LT(id, num_extents);
        std::memcpy(resp, store.data() + id * extent_bytes, extent_bytes);
        *cpu = TouchCost(extent_bytes);
        return extent_bytes;
      });
  server.RegisterHandler(
      kWriteRpc, [&store, extent_bytes, num_extents](
                     const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t,
                     Nanos* cpu) -> uint32_t {
        uint64_t id = 0;
        std::memcpy(&id, req, 8);
        FLOCK_CHECK_LT(id, num_extents);
        FLOCK_CHECK_EQ(len, 8 + extent_bytes);
        std::memcpy(store.data() + id * extent_bytes, req + 8, extent_bytes);
        *cpu = TouchCost(extent_bytes);
        const uint64_t ok = 1;
        std::memcpy(resp, &ok, 8);
        return 8;
      });
  server.StartServer(rc.server_cores);

  FlockRuntime client(cluster, 1, config);
  client.StartClient();
  Connection* conn = client.Connect(server, rc.lanes);

  Shared shared;
  uint64_t seed = 0x9e3779b97f4a7c15ULL ^ rc.extent_bytes;
  int next_thread = 0;
  for (int t = 0; t < rc.meta_threads; ++t) {
    cluster.sim().Spawn(MetaWorker(&cluster, conn,
                                   client.CreateThread(next_thread++),
                                   SplitMix64(seed), &shared));
  }
  if (with_extents) {
    for (int t = 0; t < rc.extent_threads; ++t) {
      cluster.sim().Spawn(ExtentWorker(
          &cluster, conn, client.CreateThread(next_thread++), rc.extent_bytes,
          rc.num_extents, SplitMix64(seed), &shared));
    }
  }

  cluster.sim().RunFor(rc.warmup);
  shared.measuring = true;
  cluster.sim().RunFor(rc.measure);
  shared.measuring = false;

  const double seconds = static_cast<double>(rc.measure) / 1e9;
  RunResult r;
  r.extent_gbps = static_cast<double>(shared.extent_bytes) / seconds / 1e9;
  r.extent_ops = shared.extent_ops;
  r.extent_p50 = shared.extent_latency.Median();
  r.extent_p99 = shared.extent_latency.P99();
  r.meta_kops = static_cast<double>(shared.meta_ops) / seconds / 1e3;
  r.meta_p50 = shared.meta_latency.Median();
  r.meta_p99 = shared.meta_latency.P99();
  r.failures = shared.failures;
  return r;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "extent_store");
  RunConfig rc;
  rc.extent_bytes =
      static_cast<uint32_t>(flags.Int("extent_kb", 1024)) * 1024u;
  rc.num_extents = static_cast<uint64_t>(flags.Int("extents", 64));
  rc.extent_threads = static_cast<int>(flags.Int("extent_threads", 2));
  rc.meta_threads = static_cast<int>(flags.Int("meta_threads", 4));
  rc.lanes = static_cast<uint32_t>(flags.Int("lanes", 4));
  rc.server_cores = static_cast<int>(flags.Int("server_cores", 4));
  rc.warmup = flags.Int("warmup_ms", 2) * flock::kMillisecond;
  rc.measure = flags.Int("measure_ms", 6) * flock::kMillisecond;

  PrintBanner("Extent store: solo metadata baseline");
  const RunResult solo = Run(rc, /*with_extents=*/false);
  std::printf("meta: %.1f kops, p50 %.1f us, p99 %.1f us (%llu failures)\n",
              solo.meta_kops, solo.meta_p50 / 1e3, solo.meta_p99 / 1e3,
              static_cast<unsigned long long>(solo.failures));
  std::printf("CSV,extent_store,solo,%.1f,%ld,%ld\n", solo.meta_kops,
              static_cast<long>(solo.meta_p50), static_cast<long>(solo.meta_p99));
  json.Row({{"config", "solo"}, {"meta_kops", solo.meta_kops},
            {"meta_p50_ns", solo.meta_p50}, {"meta_p99_ns", solo.meta_p99},
            {"failures", solo.failures}});

  PrintBanner("Extent store: bimodal (metadata + extents)");
  const RunResult bi = Run(rc, /*with_extents=*/true);
  const double p99_ratio =
      solo.meta_p99 > 0 ? static_cast<double>(bi.meta_p99) / solo.meta_p99 : 0;
  std::printf("extents: %u KB x %llu ops, %.2f GB/s, p50 %.1f us, p99 %.1f us\n",
              rc.extent_bytes / 1024,
              static_cast<unsigned long long>(bi.extent_ops), bi.extent_gbps,
              bi.extent_p50 / 1e3, bi.extent_p99 / 1e3);
  std::printf("meta:    %.1f kops, p50 %.1f us, p99 %.1f us (%.2fx solo p99, "
              "%llu failures)\n",
              bi.meta_kops, bi.meta_p50 / 1e3, bi.meta_p99 / 1e3, p99_ratio,
              static_cast<unsigned long long>(bi.failures));
  std::printf("CSV,extent_store,bimodal,%u,%.3f,%ld,%ld,%.1f,%ld,%ld,%.3f\n",
              rc.extent_bytes / 1024, bi.extent_gbps,
              static_cast<long>(bi.extent_p50), static_cast<long>(bi.extent_p99),
              bi.meta_kops, static_cast<long>(bi.meta_p50),
              static_cast<long>(bi.meta_p99), p99_ratio);
  json.Row({{"config", "bimodal"}, {"extent_kb", rc.extent_bytes / 1024},
            {"extent_ops", bi.extent_ops}, {"extent_gbps", bi.extent_gbps},
            {"extent_p50_ns", bi.extent_p50}, {"extent_p99_ns", bi.extent_p99},
            {"meta_kops", bi.meta_kops}, {"meta_p50_ns", bi.meta_p50},
            {"meta_p99_ns", bi.meta_p99}, {"meta_p99_ratio", p99_ratio},
            {"failures", bi.failures}});

  std::printf("\nbimodal metadata p99 is %.2fx solo (gate: <= 2x); extent "
              "bandwidth %.2f GB/s\n", p99_ratio, bi.extent_gbps);
  return 0;
}
