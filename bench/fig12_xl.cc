// Figure 12 XL — node scalability beyond the paper's testbed.
//
// The paper stops at 23 client nodes (its hardware). With the sharded
// simulation kernel the same closed-loop echo world extends to 100+ simulated
// nodes and ~10k worker threads: --servers server nodes each serve a group of
// --clients/--servers client nodes (the grouped topology keeps per-server
// fan-in at the paper's scale while the *cluster* grows), and the kernel
// spreads nodes round-robin across --shards shards. The trace is
// shard-invariant, so the reported mops/latency are identical whatever
// --shards is; sharding only changes how long the figure takes on the host.
//
// Usage: fig12_xl [--servers=8] [--clients=96] [--threads=96]
//                 [--measure_ms=1] [--warmup_ms=1] [--shards=8] [--workers=0]
//                 [--payload=64] [--json=...]
#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/histogram.h"
#include "src/flock/flock.h"

namespace flock::bench {
namespace {

// Per-client-node accounting: single-writer under sharding (all of a node's
// workers run on its shard), merged in node order after the run.
struct NodeStats {
  bool measuring = false;
  uint64_t completed = 0;
  Histogram latency;
};

sim::Proc XlWorker(verbs::Cluster& cluster, Connection* conn, FlockThread* thread,
                   uint32_t payload_bytes, NodeStats* stats, Nanos start_delay) {
  co_await sim::Delay(cluster.sim(), start_delay);  // de-synchronized start
  std::vector<uint8_t> payload(payload_bytes, 0x5a);
  std::vector<uint8_t> resp;
  for (;;) {
    const Nanos start = cluster.sim().Now();
    co_await conn->Call(*thread, 1, payload.data(), payload_bytes, &resp);
    if (stats->measuring) {
      stats->completed += 1;
      stats->latency.Record(cluster.sim().Now() - start);
    }
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int servers = static_cast<int>(flags.Int("servers", 8));
  const int clients = static_cast<int>(flags.Int("clients", 96));
  const int threads = static_cast<int>(flags.Int("threads", 96));
  const uint32_t payload = static_cast<uint32_t>(flags.Int("payload", 64));
  const Nanos warmup = flags.Int("warmup_ms", 1) * kMillisecond;
  const Nanos measure = flags.Int("measure_ms", 1) * kMillisecond;
  const int shards = static_cast<int>(flags.Int("shards", 8));
  const int workers = static_cast<int>(flags.Int("workers", 0));
  JsonDump json(flags, "fig12_xl");

  const int num_nodes = servers + clients;
  PrintBanner("Figure 12 XL: cluster scale beyond the paper's testbed");
  std::printf("%d nodes (%d servers, %d clients), %d threads/client = %d "
              "worker threads, %d shards\n",
              num_nodes, servers, clients, threads, clients * threads, shards);

  const WallTimer build_timer;
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = num_nodes,
                                                .cores_per_node = 34,
                                                .num_shards = shards,
                                                .num_workers = workers});
  FlockConfig config;
  std::vector<std::unique_ptr<FlockRuntime>> server_rts;
  for (int s = 0; s < servers; ++s) {
    server_rts.push_back(std::make_unique<FlockRuntime>(cluster, s, config));
    server_rts.back()->RegisterHandler(
        1, [](const uint8_t* req, uint32_t req_len, uint8_t* resp, uint32_t,
              Nanos* cpu) -> uint32_t {
          *cpu = 50;
          std::memcpy(resp, req, req_len);
          return req_len;
        });
    server_rts.back()->StartServer(32);
  }

  std::vector<std::unique_ptr<FlockRuntime>> client_rts;
  std::vector<NodeStats> stats(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    const int node = servers + c;
    auto rt = std::make_unique<FlockRuntime>(cluster, node, config);
    rt->StartClient();
    Connection* conn =
        rt->Connect(*server_rts[static_cast<size_t>(c % servers)],
                    static_cast<uint32_t>(threads));
    for (int t = 0; t < threads; ++t) {
      cluster.sim().Spawn(
          XlWorker(cluster, conn, rt->CreateThread(t % 32), payload,
                   &stats[static_cast<size_t>(c)],
                   (static_cast<Nanos>(c) * 7919 + t * 977) % (100 * kMicrosecond)),
          node);
    }
    client_rts.push_back(std::move(rt));
  }
  std::printf("world built in %.1f s\n", build_timer.Seconds());

  const WallTimer run_timer;
  cluster.sim().RunFor(warmup);
  for (NodeStats& s : stats) {
    s.measuring = true;
  }
  cluster.sim().RunFor(measure);

  uint64_t completed = 0;
  Histogram latency;
  TraceHash hash;
  for (const NodeStats& s : stats) {
    completed += s.completed;
    latency.Merge(s.latency);
    hash.Mix(s.completed);
  }
  for (int n = 0; n < num_nodes; ++n) {
    const verbs::Device::Stats& d = cluster.device(n).stats();
    hash.Mix(d.tx_msgs).Mix(d.rx_msgs).Mix(d.tx_bytes);
  }
  const double wall_s = run_timer.Seconds();
  const double mops = static_cast<double>(completed) /
                      (static_cast<double>(measure) / 1e9) / 1e6;
  const uint64_t events = cluster.sim().events_processed();
  std::printf("%9s %10s %10s %10s %12s %10s\n", "nodes", "mops", "p50 us",
              "p99 us", "events", "wall s");
  std::printf("%9d %10.1f %10.1f %10.1f %12lu %10.1f\n", num_nodes, mops,
              latency.Median() / 1e3, latency.P99() / 1e3,
              static_cast<unsigned long>(events), wall_s);
  std::printf("CSV,fig12_xl,%d,%d,%d,%.2f,%ld,%ld,%lu,%.1f\n", num_nodes,
              clients * threads, shards, mops, static_cast<long>(latency.Median()),
              static_cast<long>(latency.P99()),
              static_cast<unsigned long>(events), wall_s);
  json.Row({{"nodes", num_nodes},
            {"servers", servers},
            {"clients", clients},
            {"worker_threads", clients * threads},
            {"shards", shards},
            {"host_cpus", static_cast<int>(std::thread::hardware_concurrency())},
            {"mops", mops},
            {"p50_ns", latency.Median()},
            {"p99_ns", latency.P99()},
            {"events", events},
            {"completed", completed},
            {"trace_hash", std::to_string(hash.value())},
            {"wall_s", wall_s}});
  return 0;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) { return flock::bench::Main(argc, argv); }
