#include "bench/rpc_bench_lib.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "src/baselines/rcrpc.h"
#include "src/baselines/udrpc.h"
#include "src/flock/flock.h"

namespace flock::bench {

namespace {

constexpr uint16_t kEchoRpc = 1;

// Per-client-node accounting. Under kernel sharding every worker of a node
// runs on that node's shard, so one Shared per client node is single-writer
// by construction; totals merge on the main thread after the run, in node
// order, so the report is deterministic. (`measuring` is flipped by the main
// thread only between Run* calls, never mid-window.)
struct Shared {
  bool measuring = false;
  uint64_t completed = 0;
  uint64_t timeouts = 0;
  Histogram latency;
};

struct SharedTotals {
  uint64_t completed = 0;
  uint64_t timeouts = 0;
  Histogram latency;
};

void SetMeasuring(std::vector<Shared>* shared, bool on) {
  for (Shared& s : *shared) {
    s.measuring = on;
  }
}

SharedTotals MergeShared(const std::vector<Shared>& shared) {
  SharedTotals t;
  for (const Shared& s : shared) {
    t.completed += s.completed;
    t.timeouts += s.timeouts;
    t.latency.Merge(s.latency);
  }
  return t;
}

RpcHandler MakeEchoHandler(uint32_t resp_bytes, Nanos handler_cpu) {
  return [resp_bytes, handler_cpu](const uint8_t* req, uint32_t len, uint8_t* resp,
                                   uint32_t cap, Nanos* cpu) -> uint32_t {
    (void)req;
    (void)len;
    *cpu = handler_cpu;
    std::memset(resp, 0xab, std::min(resp_bytes, cap));
    return std::min(resp_bytes, cap);
  };
}

uint32_t ThreadReqBytes(const RpcBenchConfig& config, int thread_index) {
  if (config.large_thread_fraction <= 0.0 || config.large_req_bytes == 0) {
    return config.req_bytes;
  }
  const double position = (static_cast<double>(thread_index) + 0.5) /
                          static_cast<double>(config.threads_per_client);
  return position < config.large_thread_fraction ? config.large_req_bytes
                                                 : config.req_bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// Flock
// ---------------------------------------------------------------------------

namespace {

sim::Proc FlockWorker(verbs::Cluster& cluster, Connection* conn, FlockThread* thread,
                      uint32_t req_bytes, int outstanding, Shared* shared,
                      Nanos start_delay) {
  co_await sim::Delay(cluster.sim(), start_delay);  // de-synchronized start
  std::vector<uint8_t> payload(req_bytes, 0x5a);
  std::vector<PendingRpc*> batch(static_cast<size_t>(outstanding));
  for (;;) {
    for (int i = 0; i < outstanding; ++i) {
      batch[static_cast<size_t>(i)] =
          co_await conn->SendRpc(*thread, kEchoRpc, payload.data(), req_bytes);
    }
    for (int i = 0; i < outstanding; ++i) {
      PendingRpc* rpc = batch[static_cast<size_t>(i)];
      co_await conn->AwaitResponse(*thread, rpc);
      if (shared->measuring) {
        shared->completed += 1;
        shared->latency.Record(rpc->completed_at - rpc->submitted_at);
      }
      conn->FreeRpc(rpc);
    }
  }
}

}  // namespace

RpcBenchResult RunFlockRpc(const RpcBenchConfig& config) {
  const int cores = std::max(config.server_cores, config.client_cores);
  verbs::Cluster cluster(verbs::Cluster::Config{
      .num_nodes = 1 + config.num_clients, .cores_per_node = cores,
      .cost = config.cost, .num_shards = config.num_shards,
      .num_workers = config.num_workers});

  FlockRuntime server(cluster, 0, config.flock);
  server.RegisterHandler(kEchoRpc, MakeEchoHandler(config.resp_bytes, config.handler_cpu));
  server.StartServer(config.server_cores - 1);  // core 0 runs the QP scheduler

  std::vector<Shared> shared(static_cast<size_t>(config.num_clients));
  FlockConfig client_config = config.flock;
  client_config.response_dispatchers = config.threads_per_client >= 32 ? 2 : 1;

  std::vector<std::unique_ptr<FlockRuntime>> clients;
  std::vector<Connection*> connections;
  const int worker_cores = std::max(2, config.client_cores - 2);
  for (int c = 0; c < config.num_clients; ++c) {
    for (int p = 0; p < config.processes_per_client; ++p) {
      clients.push_back(
          std::make_unique<FlockRuntime>(cluster, 1 + c, client_config));
      FlockRuntime& runtime = *clients.back();
      runtime.StartClient();
      const uint32_t lanes = config.lanes_per_connection > 0
                                 ? config.lanes_per_connection
                                 : static_cast<uint32_t>(config.threads_per_client);
      Connection* conn = runtime.Connect(server, lanes);
      connections.push_back(conn);
      for (int t = 0; t < config.threads_per_client; ++t) {
        FlockThread* thread = runtime.CreateThread(
            (p * config.threads_per_client + t) % worker_cores);
        cluster.sim().Spawn(
            FlockWorker(cluster, conn, thread, ThreadReqBytes(config, t),
                        config.outstanding, &shared[static_cast<size_t>(c)],
                        (static_cast<Nanos>(connections.size()) * 7919 + t * 977) %
                            (200 * kMicrosecond)),
            /*node=*/1 + c);
      }
    }
  }

  cluster.sim().RunFor(config.warmup);
  const Nanos busy0 = cluster.cpu(0).TotalBusyTime();
  uint64_t messages0 = 0, requests0 = 0;
  for (Connection* conn : connections) {
    messages0 += conn->messages_sent();
    requests0 += conn->requests_sent();
  }
  SetMeasuring(&shared, true);
  cluster.sim().RunFor(config.measure);
  SetMeasuring(&shared, false);

  const SharedTotals totals = MergeShared(shared);
  RpcBenchResult result;
  result.completed = totals.completed;
  result.mops = static_cast<double>(totals.completed) /
                (static_cast<double>(config.measure) / 1e9) / 1e6;
  result.p50_ns = totals.latency.Median();
  result.p99_ns = totals.latency.P99();
  uint64_t messages = 0, requests = 0;
  for (Connection* conn : connections) {
    messages += conn->messages_sent();
    requests += conn->requests_sent();
  }
  result.coalescing = (messages - messages0) == 0
                          ? 0.0
                          : static_cast<double>(requests - requests0) /
                                static_cast<double>(messages - messages0);
  result.server_cpu = static_cast<double>(cluster.cpu(0).TotalBusyTime() - busy0) /
                      (static_cast<double>(config.measure) * config.server_cores);
  result.active_qps = server.ActiveServerLanes();
  return result;
}

// ---------------------------------------------------------------------------
// eRPC-like UD baseline
// ---------------------------------------------------------------------------

namespace {

sim::Proc UdWorker(verbs::Cluster& cluster, baselines::UdRpcClient::Thread* thread,
                   baselines::UdEndpoint server, uint32_t req_bytes, int outstanding,
                   Shared* shared, Nanos start_delay) {
  co_await sim::Delay(cluster.sim(), start_delay);  // de-synchronized start
  std::vector<uint8_t> payload(req_bytes, 0x5a);
  std::vector<baselines::UdRpcClient::Pending*> batch(
      static_cast<size_t>(outstanding));
  for (;;) {
    for (int i = 0; i < outstanding; ++i) {
      batch[static_cast<size_t>(i)] =
          co_await thread->Send(server, kEchoRpc, payload.data(), req_bytes);
    }
    for (int i = 0; i < outstanding; ++i) {
      baselines::UdRpcClient::Pending* pending = batch[static_cast<size_t>(i)];
      const bool ok = co_await thread->Await(pending, 2 * kMillisecond);
      if (shared->measuring) {
        if (ok) {
          shared->completed += 1;
          shared->latency.Record(pending->completed_at - pending->submitted_at);
        } else {
          shared->timeouts += 1;
        }
      }
      delete pending;
    }
  }
}

}  // namespace

RpcBenchResult RunUdRpc(const RpcBenchConfig& config) {
  const int cores = std::max(config.server_cores, config.client_cores);
  verbs::Cluster cluster(verbs::Cluster::Config{
      .num_nodes = 1 + config.num_clients, .cores_per_node = cores,
      .cost = config.cost, .num_shards = config.num_shards,
      .num_workers = config.num_workers});

  baselines::UdRpcServer server(
      cluster, 0,
      baselines::UdRpcServer::Config{.worker_threads = config.ud_server_workers,
                                     .recv_pool = config.ud_recv_pool});
  server.RegisterHandler(kEchoRpc, MakeEchoHandler(config.resp_bytes, config.handler_cpu));
  server.Start();

  std::vector<Shared> shared(static_cast<size_t>(config.num_clients));
  std::vector<std::unique_ptr<baselines::UdRpcClient>> clients;
  int global_thread = 0;
  for (int c = 0; c < config.num_clients; ++c) {
    clients.push_back(std::make_unique<baselines::UdRpcClient>(cluster, 1 + c));
    for (int t = 0; t < config.threads_per_client; ++t) {
      baselines::UdRpcClient::Thread* thread = clients.back()->CreateThread(
          t % config.client_cores,
          /*recv_pool=*/static_cast<uint32_t>(config.outstanding) + 8);
      const baselines::UdEndpoint endpoint =
          server.endpoint(global_thread++ % server.num_workers());
      cluster.sim().Spawn(
          UdWorker(cluster, thread, endpoint, ThreadReqBytes(config, t),
                   config.outstanding, &shared[static_cast<size_t>(c)],
                   (static_cast<Nanos>(global_thread) * 977) %
                       (200 * kMicrosecond)),
          /*node=*/1 + c);
    }
  }

  cluster.sim().RunFor(config.warmup);
  const Nanos busy0 = cluster.cpu(0).TotalBusyTime();
  SetMeasuring(&shared, true);
  cluster.sim().RunFor(config.measure);
  SetMeasuring(&shared, false);

  const SharedTotals totals = MergeShared(shared);
  RpcBenchResult result;
  result.completed = totals.completed;
  result.timeouts = totals.timeouts;
  result.mops = static_cast<double>(totals.completed) /
                (static_cast<double>(config.measure) / 1e9) / 1e6;
  result.p50_ns = totals.latency.Median();
  result.p99_ns = totals.latency.P99();
  result.server_cpu = static_cast<double>(cluster.cpu(0).TotalBusyTime() - busy0) /
                      (static_cast<double>(config.measure) * config.server_cores);
  result.drops = cluster.device(0).stats().ud_drops;
  for (int c = 0; c < config.num_clients; ++c) {
    result.drops += cluster.device(1 + c).stats().ud_drops;
  }
  return result;
}

// ---------------------------------------------------------------------------
// RC baselines (no sharing / FaRM-like lock sharing)
// ---------------------------------------------------------------------------

namespace {

sim::Proc RcWorker(verbs::Cluster& cluster, baselines::RcRpcClient* client,
                   baselines::RcRpcClient::Lane* lane, FlockThread* thread,
                   uint32_t req_bytes, Shared* shared, Nanos start_delay) {
  co_await sim::Delay(cluster.sim(), start_delay);  // de-synchronized start
  std::vector<uint8_t> payload(req_bytes, 0x5a);
  std::vector<uint8_t> response;
  for (;;) {
    const Nanos start = cluster.sim().Now();
    co_await client->Call(*thread, *lane, kEchoRpc, payload.data(), req_bytes,
                          &response);
    if (shared->measuring) {
      shared->completed += 1;
      shared->latency.Record(cluster.sim().Now() - start);
    }
  }
}

}  // namespace

RpcBenchResult RunRcRpc(const RpcBenchConfig& config) {
  const int cores = std::max(config.server_cores, config.client_cores);
  verbs::Cluster cluster(verbs::Cluster::Config{
      .num_nodes = 1 + config.num_clients, .cores_per_node = cores,
      .cost = config.cost, .num_shards = config.num_shards,
      .num_workers = config.num_workers});

  baselines::RcRpcServer server(cluster, 0, config.server_cores);
  server.RegisterHandler(kEchoRpc, MakeEchoHandler(config.resp_bytes, config.handler_cpu));
  server.Start();

  std::vector<Shared> shared(static_cast<size_t>(config.num_clients));
  std::vector<std::unique_ptr<baselines::RcRpcClient>> clients;
  const int share = std::max(1, config.threads_per_qp);
  const int worker_cores = std::max(2, config.client_cores - 1);
  for (int c = 0; c < config.num_clients; ++c) {
    clients.push_back(std::make_unique<baselines::RcRpcClient>(cluster, 1 + c, server));
    baselines::RcRpcClient& client = *clients.back();
    client.Start();
    std::vector<baselines::RcRpcClient::Lane*> lanes;
    const int lane_count = (config.threads_per_client + share - 1) / share;
    for (int l = 0; l < lane_count; ++l) {
      lanes.push_back(client.CreateLane());
    }
    for (int t = 0; t < config.threads_per_client; ++t) {
      FlockThread* thread = client.CreateThread(t % worker_cores);
      baselines::RcRpcClient::Lane* lane = lanes[static_cast<size_t>(t / share)];
      // `outstanding` is modeled as that many closed-loop workers per thread.
      for (int o = 0; o < config.outstanding; ++o) {
        cluster.sim().Spawn(
            RcWorker(cluster, &client, lane, thread, ThreadReqBytes(config, t),
                     &shared[static_cast<size_t>(c)],
                     (static_cast<Nanos>(c) * 7919 + t * 977 + o * 331) %
                         (200 * kMicrosecond)),
            /*node=*/1 + c);
      }
    }
  }

  cluster.sim().RunFor(config.warmup);
  const Nanos busy0 = cluster.cpu(0).TotalBusyTime();
  SetMeasuring(&shared, true);
  cluster.sim().RunFor(config.measure);
  SetMeasuring(&shared, false);

  const SharedTotals totals = MergeShared(shared);
  RpcBenchResult result;
  result.completed = totals.completed;
  result.mops = static_cast<double>(totals.completed) /
                (static_cast<double>(config.measure) / 1e9) / 1e6;
  result.p50_ns = totals.latency.Median();
  result.p99_ns = totals.latency.P99();
  result.server_cpu = static_cast<double>(cluster.cpu(0).TotalBusyTime() - busy0) /
                      (static_cast<double>(config.measure) * config.server_cores);
  return result;
}

}  // namespace flock::bench
