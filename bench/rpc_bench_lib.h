// Reusable cluster-scale RPC benchmark worlds (the §8.1 testbed: one server,
// many 32-core clients, 100 Gbps fabric), parameterized to regenerate
// Figs. 6–12. Each Run* function builds a fresh simulated cluster, drives a
// closed-loop echo workload (each thread keeps `outstanding` requests in
// flight), and reports throughput, median/p99 latency, coalescing and server
// CPU utilization after a warmup.
#ifndef FLOCK_BENCH_RPC_BENCH_LIB_H_
#define FLOCK_BENCH_RPC_BENCH_LIB_H_

#include <cstdint>

#include "src/common/histogram.h"
#include "src/common/units.h"
#include "src/flock/config.h"
#include "src/sim/cost_model.h"

namespace flock::bench {

struct RpcBenchConfig {
  int num_clients = 23;
  int threads_per_client = 8;
  int outstanding = 1;
  uint32_t req_bytes = 64;
  uint32_t resp_bytes = 64;
  Nanos handler_cpu = 50;

  // Payload mix for Fig. 11: this fraction of threads sends large requests.
  double large_thread_fraction = 0.0;
  uint32_t large_req_bytes = 0;

  int server_cores = 32;
  int client_cores = 32;
  // Simulation-kernel sharding (wall-clock only; traces are bit-identical at
  // every value — see src/sim/simulator.h). 0 workers = one per shard up to
  // the host's hardware threads.
  int num_shards = 1;
  int num_workers = 0;
  // Simulated-hardware constants (perturbed by the sensitivity ablation).
  sim::CostModel cost;
  Nanos warmup = 1 * kMillisecond;
  Nanos measure = 3 * kMillisecond;

  // Flock-specific.
  FlockConfig flock;
  uint32_t lanes_per_connection = 0;  // 0 → one per thread

  // Fig. 12: split each client node into this many independent processes
  // (each its own runtime) with `threads_per_client` threads per process.
  int processes_per_client = 1;

  // RC baselines: threads per shared QP (1 = no sharing).
  int threads_per_qp = 1;

  // UD baseline.
  int ud_server_workers = 32;
  // Per-worker posted receives. eRPC's credit-based sessions keep clients
  // from overrunning the server (use a deep pool); FaSST-style setups drop
  // and retransmit (use a shallow one).
  uint32_t ud_recv_pool = 2048;
};

struct RpcBenchResult {
  double mops = 0;            // completed requests per second / 1e6
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  double coalescing = 0;      // requests per message (client side)
  double server_cpu = 0;      // utilization of the server cores [0,1]
  uint64_t timeouts = 0;      // UD only: requests declared lost
  uint64_t drops = 0;         // UD only: datagrams dropped (no posted receive)
  uint64_t completed = 0;
  uint32_t active_qps = 0;    // Flock: server-side active lanes at end
};

RpcBenchResult RunFlockRpc(const RpcBenchConfig& config);
RpcBenchResult RunUdRpc(const RpcBenchConfig& config);
RpcBenchResult RunRcRpc(const RpcBenchConfig& config);  // threads_per_qp applies

}  // namespace flock::bench

#endif  // FLOCK_BENCH_RPC_BENCH_LIB_H_
