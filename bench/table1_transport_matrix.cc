// Table 1 — RDMA operations and MTU sizes supported by each transport type.
//
// Probes the simulated verbs layer the way an application would: posting each
// verb on each transport and reporting whether the transport accepts it, plus
// the effective MTU behaviour (RC segments large payloads; UD rejects
// payloads beyond MTU - GRH).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/verbs/device.h"

int main(int argc, char** argv) {
  using namespace flock;
  using namespace flock::verbs;
  bench::Flags flags(argc, argv);
  bench::JsonDump json(flags, "table1_transport_matrix");
  bench::PrintBanner("Table 1: verbs / MTU capability matrix per transport");

  Cluster cluster(Cluster::Config{.num_nodes = 2});
  Cq* scq = cluster.device(0).CreateCq();
  Cq* rcq = cluster.device(0).CreateCq();
  Cq* pscq = cluster.device(1).CreateCq();
  Cq* prcq = cluster.device(1).CreateCq();

  auto [rc, rc_peer] = cluster.ConnectRc(0, scq, rcq, 1, pscq, prcq);
  Qp* uc = cluster.device(0).CreateQp(QpType::kUc, scq, rcq);
  Qp* uc_peer = cluster.device(1).CreateQp(QpType::kUc, pscq, prcq);
  uc->ConnectTo(1, uc_peer->qpn());
  Qp* ud = cluster.device(0).CreateQp(QpType::kUd, scq, rcq);
  Qp* ud_peer = cluster.device(1).CreateQp(QpType::kUd, pscq, prcq);

  const uint64_t buf = cluster.mem(0).Alloc(8192);
  const uint64_t rbuf = cluster.mem(1).Alloc(8192);
  Mr mr = cluster.device(1).RegisterMr(rbuf, 8192);

  auto probe = [&](Qp* qp, Opcode op) -> bool {
    SendWr wr;
    wr.opcode = op;
    wr.local_addr = buf;
    wr.length = 8;
    wr.remote_addr = rbuf;
    wr.rkey = mr.rkey;
    wr.dest_node = 1;
    wr.dest_qpn = ud_peer->qpn();
    return qp->PostSend(wr) == WcStatus::kSuccess;
  };
  auto mtu_probe = [&](Qp* qp, uint32_t len) -> bool {
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.local_addr = buf;
    wr.length = len;
    wr.dest_node = 1;
    wr.dest_qpn = ud_peer->qpn();
    return qp->PostSend(wr) == WcStatus::kSuccess;
  };

  std::printf("%-10s %6s %8s %7s %10s %12s\n", "transport", "read", "atomic",
              "write", "send/recv", "payload>4KB");
  struct Row {
    const char* name;
    Qp* qp;
  } rows[] = {{"RC", rc}, {"UC", uc}, {"UD", ud}};
  for (const Row& row : rows) {
    const bool can_read = probe(row.qp, Opcode::kRead);
    const bool can_atomic =
        probe(row.qp, Opcode::kFetchAdd) && probe(row.qp, Opcode::kCmpSwap);
    const bool can_write = probe(row.qp, Opcode::kWrite);
    const bool can_send = probe(row.qp, Opcode::kSend);
    const bool big_payload = mtu_probe(row.qp, 8000);
    std::printf("%-10s %6s %8s %7s %10s %12s\n", row.name, can_read ? "yes" : "no",
                can_atomic ? "yes" : "no", can_write ? "yes" : "no",
                can_send ? "yes" : "no", big_payload ? "yes (2GB)" : "no (4KB)");
    std::printf("CSV,table1,%s,%d,%d,%d,%d,%d\n", row.name, can_read, can_atomic,
                can_write, can_send, big_payload);
    json.Row({{"transport", row.name},
              {"read", can_read},
              {"atomic", can_atomic},
              {"write", can_write},
              {"send_recv", can_send},
              {"large_payload", big_payload}});
  }
  std::printf(
      "\nRC retransmits in hardware; UC/UD leave loss to software, and UD\n"
      "requires fragmentation + reassembly above %u-byte datagrams.\n",
      cluster.cost().mtu_bytes - 40);
  return 0;
}
