// Figure 10 — impact of coalescing (§8.3.1).
//
// 23 clients x 32 threads, 64 B RPCs; Flock with and without coalescing for
// 1/4/8 outstanding requests per thread. Paper result: coalescing delivers
// 1.4x / 1.7x / 1.7x with ~1.56 / ~1.7 / ~2.0 requests per message.
//
// Also sweeps the leader's combining bound (an ablation of the
// leader-progress bound design choice in §4.2).
//
// Usage: fig10_coalescing [--measure_ms=3] [--warmup_ms=2] [--bound_sweep=1]
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/rpc_bench_lib.h"

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "fig10_coalescing");
  const flock::Nanos warmup = flags.Int("warmup_ms", 2) * flock::kMillisecond;
  const flock::Nanos measure = flags.Int("measure_ms", 3) * flock::kMillisecond;

  PrintBanner("Figure 10: coalescing impact, 23 clients x 32 threads, 64B");
  std::printf("%12s %14s %14s %10s %10s\n", "outstanding", "no-coal Mops",
              "coal Mops", "speedup", "reqs/msg");
  for (int outstanding : {1, 4, 8}) {
    RpcBenchConfig config;
    config.num_clients = 23;
    config.threads_per_client = 32;
    config.outstanding = outstanding;
    config.warmup = warmup;
    config.measure = measure;

    config.flock.coalescing = false;
    const RpcBenchResult off = RunFlockRpc(config);
    config.flock.coalescing = true;
    const RpcBenchResult on = RunFlockRpc(config);

    std::printf("%12d %14.1f %14.1f %10.2f %10.2f\n", outstanding, off.mops, on.mops,
                off.mops > 0 ? on.mops / off.mops : 0.0, on.coalescing);
    std::printf("CSV,fig10,%d,%.2f,%.2f,%.2f\n", outstanding, off.mops, on.mops,
                on.coalescing);
    json.Row({{"sweep", "coalescing"},
              {"outstanding", outstanding},
              {"off_mops", off.mops},
              {"on_mops", on.mops},
              {"coalescing", on.coalescing}});
    std::fflush(stdout);
  }

  if (flags.Bool("bound_sweep", true)) {
    PrintBanner("Ablation: leader combining bound (outstanding=8)");
    std::printf("%8s %10s %10s\n", "bound", "Mops", "reqs/msg");
    for (uint32_t bound : {1u, 2u, 4u, 8u, 16u, 32u}) {
      RpcBenchConfig config;
      config.num_clients = 23;
      config.threads_per_client = 32;
      config.outstanding = 8;
      config.warmup = warmup;
      config.measure = measure;
      config.flock.max_coalesce = bound;
      const RpcBenchResult result = RunFlockRpc(config);
      std::printf("%8u %10.1f %10.2f\n", bound, result.mops, result.coalescing);
      std::printf("CSV,fig10bound,%u,%.2f,%.2f\n", bound, result.mops,
                  result.coalescing);
      json.Row({{"sweep", "bound"},
                {"bound", bound},
                {"mops", result.mops},
                {"coalescing", result.coalescing}});
      std::fflush(stdout);
    }
  }
  return 0;
}
