// Shared utilities for the figure-reproduction benches: flag parsing,
// paper-style table printing, and machine-readable output. Every bench prints
// a human-readable table (one row per x-value) followed by machine-readable
// CSV lines prefixed "CSV,"; passing --json=<path> additionally dumps the same
// rows as a JSON document so tooling never has to scrape stdout.
#ifndef FLOCK_BENCH_BENCH_UTIL_H_
#define FLOCK_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace flock::bench {

// --key=value flags; unknown flags abort so typos are loud.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) {
        std::fprintf(stderr, "unknown argument: %s\n", arg);
        std::exit(2);
      }
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr) {
        pairs_.emplace_back(arg + 2, "1");
      } else {
        pairs_.emplace_back(std::string(arg + 2, static_cast<size_t>(eq - arg - 2)),
                            eq + 1);
      }
    }
  }

  int64_t Int(const std::string& name, int64_t fallback) const {
    const std::string* v = Find(name);
    return v == nullptr ? fallback : std::strtoll(v->c_str(), nullptr, 10);
  }

  double Double(const std::string& name, double fallback) const {
    const std::string* v = Find(name);
    return v == nullptr ? fallback : std::strtod(v->c_str(), nullptr);
  }

  bool Bool(const std::string& name, bool fallback) const {
    const std::string* v = Find(name);
    if (v == nullptr) {
      return fallback;
    }
    return *v == "1" || *v == "true" || *v == "yes";
  }

  std::string Str(const std::string& name, const std::string& fallback) const {
    const std::string* v = Find(name);
    return v == nullptr ? fallback : *v;
  }

 private:
  const std::string* Find(const std::string& name) const {
    for (const auto& [k, v] : pairs_) {
      if (k == name) {
        return &v;
      }
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> pairs_;
};

inline void PrintBanner(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

// Per-op latency off the simulator clock, for data-plane paths that have no
// PendingRpc carrying submitted_at/completed_at (one-sided reads, atomics,
// multi-step composites). Usage inside a worker coroutine:
//
//   LatencyRecorder lat(cluster->sim(), &shared->get_latency);
//   const Nanos start = lat.Start();
//   ... co_await the op(s) ...
//   if (shared->measuring) lat.Record(start);
class LatencyRecorder {
 public:
  LatencyRecorder(const sim::Simulator& sim, Histogram* hist)
      : sim_(&sim), hist_(hist) {}

  Nanos Start() const { return sim_->Now(); }
  void Record(Nanos started_at) { hist_->Record(sim_->Now() - started_at); }

 private:
  const sim::Simulator* sim_;
  Histogram* hist_;
};

// One cell of a JSON row: number, string, or bool. Implicit constructors keep
// Row() call sites terse.
struct JsonValue {
  enum class Kind { kNumber, kString, kBool };

  JsonValue(double v) : kind(Kind::kNumber), num(v) {}             // NOLINT
  JsonValue(int v) : kind(Kind::kNumber), num(v) {}                // NOLINT
  JsonValue(int64_t v)                                             // NOLINT
      : kind(Kind::kNumber), num(static_cast<double>(v)) {}
  JsonValue(uint64_t v)                                            // NOLINT
      : kind(Kind::kNumber), num(static_cast<double>(v)) {}
  JsonValue(uint32_t v) : kind(Kind::kNumber), num(v) {}           // NOLINT
  JsonValue(const char* v) : kind(Kind::kString), str(v) {}        // NOLINT
  JsonValue(std::string v) : kind(Kind::kString), str(std::move(v)) {}  // NOLINT
  JsonValue(bool v) : kind(Kind::kBool), boolean(v) {}             // NOLINT

  void AppendTo(std::string* out) const {
    char buf[64];
    switch (kind) {
      case Kind::kNumber:
        if (num == static_cast<double>(static_cast<int64_t>(num))) {
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(num));
        } else {
          std::snprintf(buf, sizeof(buf), "%.6g", num);
        }
        out->append(buf);
        break;
      case Kind::kString:
        out->push_back('"');
        for (char c : str) {
          if (c == '"' || c == '\\') {
            out->push_back('\\');
          }
          out->push_back(c);
        }
        out->push_back('"');
        break;
      case Kind::kBool:
        out->append(boolean ? "true" : "false");
        break;
    }
  }

  Kind kind;
  double num = 0;
  std::string str;
  bool boolean = false;
};

// A JSON row composed incrementally. Field order is emission order, so the
// machine-readable schema of every bench is spelled in one place per row.
class JsonRow {
 public:
  JsonRow& Add(const char* key, JsonValue value) {
    fields_.emplace_back(key, std::move(value));
    return *this;
  }

  const std::vector<std::pair<const char*, JsonValue>>& fields() const {
    return fields_;
  }

 private:
  std::vector<std::pair<const char*, JsonValue>> fields_;
};

// End-of-run control-plane lane census, accumulated across connection
// handles. Shared by every bench that gates on (or reports) lane health, so
// the key names and ordering of the machine output cannot drift between
// benches. Templated on the handle type to keep this header free of flock
// includes (it is also used by kernel-only benches that do not link flock).
struct LaneCensus {
  uint64_t healthy = 0;
  uint64_t quarantined = 0;
  uint64_t reconnecting = 0;
  uint64_t retired = 0;
  uint64_t reconnects = 0;

  template <typename ConnT>
  void Add(const ConnT& conn) {
    const auto states = conn.CountLaneStates();
    healthy += states.healthy;
    quarantined += states.quarantined;
    reconnecting += states.reconnecting;
    retired += states.retired;
    reconnects += conn.lane_reconnects();
  }

  // Canonical census keys, in canonical order. perf_smoke's committed
  // baseline schema predates the retired counter, so it stays opt-in.
  void AppendTo(JsonRow* row, bool include_retired) const {
    row->Add("lanes_healthy", healthy)
        .Add("lanes_quarantined", quarantined)
        .Add("lanes_reconnecting", reconnecting);
    if (include_retired) {
      row->Add("lanes_retired", retired);
    }
    row->Add("lane_reconnects", reconnects);
  }
};

// Snapshot of the event kernel's delivery counters. Capture before and after
// a measured region and subtract, or capture once at the end for whole-run
// totals. Shared by perf_smoke and sim_kernel so both report the same
// counter set the same way.
struct KernelCounters {
  uint64_t events = 0;
  uint64_t resumes = 0;
  uint64_t direct_resumes = 0;
  uint64_t coalesced_wakes = 0;

  template <typename SimT>
  static KernelCounters Capture(const SimT& sim) {
    KernelCounters c;
    c.events = sim.events_processed();
    c.resumes = sim.resumes();
    c.direct_resumes = sim.direct_resumes();
    c.coalesced_wakes = sim.coalesced_wakes();
    return c;
  }

  KernelCounters Since(const KernelCounters& before) const {
    KernelCounters d;
    d.events = events - before.events;
    d.resumes = resumes - before.resumes;
    d.direct_resumes = direct_resumes - before.direct_resumes;
    d.coalesced_wakes = coalesced_wakes - before.coalesced_wakes;
    return d;
  }
};

// Order-sensitive FNV-1a accumulator over 64-bit words. Benches and the
// determinism tests fold per-node observable state (device counters, per-node
// completion counts, final simulated time) into one fingerprint; two runs
// whose fingerprints match executed the same observable trace. Fold nodes in
// node-id order so the hash is a function of the trace, not of shard layout.
class TraceHash {
 public:
  TraceHash& Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
    return *this;
  }

  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV-1a 64-bit offset basis
};

// Host wall-clock stopwatch for the throughput benches.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Runs fn() `repeats` times and keeps the result ranked highest by `key`
// (wall-clock benches keep the fastest repeat, not the mean, so background
// host noise only ever costs reruns, never skews the recorded number).
template <typename Fn, typename Key>
auto BestOf(int repeats, Fn&& fn, Key&& key) {
  auto best = fn();
  for (int i = 1; i < repeats; ++i) {
    auto r = fn();
    if (key(r) > key(best)) {
      best = std::move(r);
    }
  }
  return best;
}

// Collects rows of key/value results and writes them as one JSON document:
//   {"bench": "<name>", "rows": [{...}, ...]}
// Construct from Flags to honor the shared --json=<path> flag (no path → all
// calls are no-ops, so benches can call Row() unconditionally next to their
// CSV prints). Write() runs in the destructor if not called explicitly.
class JsonDump {
 public:
  JsonDump(const Flags& flags, const char* bench_name)
      : path_(flags.Str("json", "")), bench_(bench_name) {}
  JsonDump(std::string path, const char* bench_name)
      : path_(std::move(path)), bench_(bench_name) {}

  ~JsonDump() { Write(); }

  JsonDump(const JsonDump&) = delete;
  JsonDump& operator=(const JsonDump&) = delete;

  bool enabled() const { return !path_.empty(); }

  void Row(std::initializer_list<std::pair<const char*, JsonValue>> fields) {
    RowImpl(fields);
  }
  void Row(const JsonRow& fields) { RowImpl(fields.fields()); }

  // Writes the document; returns false (and warns) on I/O failure.
  bool Write() {
    if (!enabled() || written_) {
      return true;
    }
    written_ = true;
    std::string doc = "{\"bench\":\"";
    doc.append(bench_);
    doc.append("\",\"rows\":[");
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) {
        doc.append(",\n");
      }
      doc.append(rows_[i]);
    }
    doc.append("]}\n");
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("JSON written to %s\n", path_.c_str());
    return true;
  }

 private:
  template <typename Fields>
  void RowImpl(const Fields& fields) {
    if (!enabled()) {
      return;
    }
    std::string row = "{";
    bool first = true;
    for (const auto& [key, value] : fields) {
      if (!first) {
        row.push_back(',');
      }
      first = false;
      row.push_back('"');
      row.append(key);
      row.append("\":");
      value.AppendTo(&row);
    }
    row.push_back('}');
    rows_.push_back(std::move(row));
  }

  std::string path_;
  std::string bench_;
  std::vector<std::string> rows_;
  bool written_ = false;
};

// End-of-run per-tenant census (DESIGN.md §15): one JSON row per registered
// tenant with a canonical key set, so every tenancy-enabled bench reports the
// same schema. Templated on the registry type (flock::tenant::TenantRegistry)
// to keep this header free of flock includes, mirroring LaneCensus.
template <typename RegistryT>
inline void AppendTenantRows(const RegistryT& registry, double sim_seconds,
                             JsonDump* dump) {
  registry.ForEachTenant([&](auto id, const auto& policy, const auto& c,
                             uint32_t live_connections, uint32_t live_lanes) {
    JsonRow row;
    row.Add("row", "tenant")
        .Add("tenant", static_cast<uint64_t>(id))
        .Add("weight", policy.weight)
        .Add("rpcs", c.rpcs)
        .Add("rpcs_per_sec", sim_seconds > 0 ? c.rpcs / sim_seconds : 0.0)
        .Add("bytes", c.bytes)
        .Add("credit_stalls", c.credit_stalls)
        .Add("quota_stalls", c.quota_stalls)
        .Add("throttle_events", c.throttle_events)
        .Add("throttle_recoveries", c.throttle_recoveries)
        .Add("over_quota_windows", c.over_quota_windows)
        .Add("admission_rejects", c.admission_rejects)
        .Add("admission_degrades", c.admission_degrades)
        .Add("stamp_mismatches", c.stamp_mismatches)
        .Add("live_connections", live_connections)
        .Add("live_lanes", live_lanes);
    dump->Row(row);
  });
}

}  // namespace flock::bench

#endif  // FLOCK_BENCH_BENCH_UTIL_H_
