// Shared utilities for the figure-reproduction benches: flag parsing and
// paper-style table printing. Every bench prints a human-readable table (one
// row per x-value) followed by machine-readable CSV lines prefixed "CSV,".
#ifndef FLOCK_BENCH_BENCH_UTIL_H_
#define FLOCK_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace flock::bench {

// --key=value flags; unknown flags abort so typos are loud.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) {
        std::fprintf(stderr, "unknown argument: %s\n", arg);
        std::exit(2);
      }
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr) {
        pairs_.emplace_back(arg + 2, "1");
      } else {
        pairs_.emplace_back(std::string(arg + 2, static_cast<size_t>(eq - arg - 2)),
                            eq + 1);
      }
    }
  }

  int64_t Int(const std::string& name, int64_t fallback) const {
    const std::string* v = Find(name);
    return v == nullptr ? fallback : std::strtoll(v->c_str(), nullptr, 10);
  }

  double Double(const std::string& name, double fallback) const {
    const std::string* v = Find(name);
    return v == nullptr ? fallback : std::strtod(v->c_str(), nullptr);
  }

  bool Bool(const std::string& name, bool fallback) const {
    const std::string* v = Find(name);
    if (v == nullptr) {
      return fallback;
    }
    return *v == "1" || *v == "true" || *v == "yes";
  }

 private:
  const std::string* Find(const std::string& name) const {
    for (const auto& [k, v] : pairs_) {
      if (k == name) {
        return &v;
      }
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> pairs_;
};

inline void PrintBanner(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

}  // namespace flock::bench

#endif  // FLOCK_BENCH_BENCH_UTIL_H_
