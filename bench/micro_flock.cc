// Microbenchmarks (google-benchmark) for Flock's host-side hot paths: the
// coalesced message codec, the ring-buffer protocol, the lock-free combining
// queue, and the latency histogram. These run on the real CPU (no simulated
// time) and guard against regressions in the per-request constant factors.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "src/common/histogram.h"
#include "src/flock/combine.h"
#include "src/flock/ring.h"
#include "src/flock/wire.h"

namespace flock {
namespace {

void BM_MessageEncode(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<uint8_t> buf(64 * 1024);
  std::vector<uint8_t> payload(64, 7);
  uint64_t canary = 1;
  for (auto _ : state) {
    wire::MessageEncoder enc(buf.data(), static_cast<uint32_t>(buf.size()), canary++);
    for (uint32_t i = 0; i < n; ++i) {
      enc.Add(wire::ReqMeta{64, static_cast<uint16_t>(i), 1, i}, payload.data());
    }
    benchmark::DoNotOptimize(enc.Seal(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MessageEncode)->Arg(1)->Arg(4)->Arg(16);

void BM_MessageDecode(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<uint8_t> buf(64 * 1024);
  std::vector<uint8_t> payload(64, 7);
  wire::MessageEncoder enc(buf.data(), static_cast<uint32_t>(buf.size()), 42);
  for (uint32_t i = 0; i < n; ++i) {
    enc.Add(wire::ReqMeta{64, static_cast<uint16_t>(i), 1, i}, payload.data());
  }
  enc.Seal(0, 0);
  std::vector<wire::ReqView> views(n);
  for (auto _ : state) {
    wire::MsgHeader header;
    benchmark::DoNotOptimize(
        wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header));
    benchmark::DoNotOptimize(wire::DecodeRequests(buf.data(), header, views.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MessageDecode)->Arg(1)->Arg(4)->Arg(16);

void BM_RingProduceConsume(benchmark::State& state) {
  const uint32_t kRing = 256 * 1024;
  std::vector<uint8_t> ring(kRing, 0);
  RingProducer producer(kRing);
  RingConsumer consumer(ring.data(), kRing);
  std::vector<uint8_t> payload(64, 3);
  uint64_t canary = 1;
  for (auto _ : state) {
    const uint32_t len = wire::MessageBytes(1, 64);
    RingProducer::Reservation resv;
    if (!producer.Reserve(len, &resv)) {
      state.SkipWithError("ring full");
      break;
    }
    if (resv.wrapped) {
      wire::EncodeWrapMarker(ring.data() + resv.marker_offset, canary);
    }
    wire::MessageEncoder enc(ring.data() + resv.offset, len, canary++);
    enc.Add(wire::ReqMeta{64, 1, 1, 1}, payload.data());
    enc.Seal(0, 0);
    wire::MsgHeader header;
    while (consumer.Probe(&header) != wire::ProbeResult::kMessage) {
    }
    consumer.Consume(header);
    producer.OnHeadUpdate(consumer.consumed_report());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingProduceConsume);

void BM_CombiningQueueUncontended(benchmark::State& state) {
  CombiningQueue queue;
  CombiningQueue::Node node;
  CombiningQueue::Node* batch[16];
  for (auto _ : state) {
    const bool leader = queue.Enqueue(&node);
    benchmark::DoNotOptimize(leader);
    const size_t n = queue.Collect(&node, batch, 16);
    queue.Finish(batch, n);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CombiningQueueUncontended);

void BM_CombiningQueueContended(benchmark::State& state) {
  static CombiningQueue queue;
  CombiningQueue::Node node;
  CombiningQueue::Node* batch[16];
  for (auto _ : state) {
    bool leader = queue.Enqueue(&node);
    if (!leader) {
      leader = queue.WaitTurn(&node) == CombiningQueue::kLeader;
    }
    if (leader) {
      const size_t n = queue.Collect(&node, batch, 16);
      queue.Finish(batch, n);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CombiningQueueContended)->Threads(1)->Threads(4);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  int64_t v = 1;
  for (auto _ : state) {
    histogram.Record(v);
    v = (v * 2862933555777941757LL + 3037000493LL) & 0xffffff;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
}  // namespace flock

BENCHMARK_MAIN();
