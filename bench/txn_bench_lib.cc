#include "bench/txn_bench_lib.h"

#include <memory>
#include <vector>

#include "src/baselines/udrpc.h"
#include "src/common/histogram.h"
#include "src/flock/flock.h"
#include "src/txn/server.h"
#include "src/txn/transport.h"

namespace flock::bench {

namespace {

constexpr int kServers = 3;
constexpr int kReplication = 3;

struct Shared {
  bool measuring = false;
  uint64_t committed = 0;
  uint64_t aborts = 0;
  uint64_t failed = 0;
  Histogram latency;
};

// One submitting coroutine: closed-loop transactions with retry-on-abort.
sim::Proc TxnWorker(verbs::Cluster* cluster, txn::TxCoordinator* coordinator,
                    const TxnBenchConfig* config, uint64_t seed, Shared* shared) {
  Rng rng(seed);
  for (;;) {
    const txn::TxRequest request = config->next(rng);
    const Nanos start = cluster->sim().Now();
    int attempts = 0;
    bool committed = false;
    while (attempts < 64) {
      ++attempts;
      if (co_await coordinator->ExecuteOnce(request)) {
        committed = true;
        break;
      }
      if (coordinator->last_failure_was_transport()) {
        break;  // packet loss: outcome unknown, abandon (FaSST-style)
      }
    }
    if (shared->measuring) {
      if (committed) {
        shared->committed += 1;
        shared->aborts += static_cast<uint64_t>(attempts - 1);
        shared->latency.Record(cluster->sim().Now() - start);
      } else {
        shared->failed += 1;
      }
    }
  }
}

}  // namespace

TxnBenchResult RunTxnBench(const TxnBenchConfig& config) {
  verbs::Cluster cluster(verbs::Cluster::Config{
      .num_nodes = kServers + config.num_clients, .cores_per_node = 32});

  // KV substrate: per-server primary + replica stores.
  std::vector<std::unique_ptr<txn::TxServer>> servers;
  std::vector<txn::TxServer*> server_ptrs;
  for (int s = 0; s < kServers; ++s) {
    servers.push_back(std::make_unique<txn::TxServer>(
        cluster.mem(s), s, kServers, kReplication, config.keys_per_partition,
        config.value_size));
    server_ptrs.push_back(servers.back().get());
  }
  uint8_t zero_value[txn::kTxMaxValue] = {};
  config.populate(
      [&](uint64_t key) { txn::PopulateKey(server_ptrs, key, zero_value); });

  Shared shared;
  std::vector<std::unique_ptr<FlockRuntime>> flock_servers;
  std::vector<std::unique_ptr<FlockRuntime>> flock_clients;
  std::vector<std::unique_ptr<baselines::UdRpcServer>> ud_servers;
  std::vector<std::unique_ptr<baselines::UdRpcClient>> ud_clients;
  std::vector<std::unique_ptr<txn::TxTransport>> transports;
  std::vector<std::unique_ptr<txn::TxCoordinator>> coordinators;
  uint64_t seed = 0x2545f4914f6cdd1dULL;

  if (config.system == TxnSystem::kFlockTx) {
    FlockConfig flock_config;
    for (int s = 0; s < kServers; ++s) {
      flock_servers.push_back(
          std::make_unique<FlockRuntime>(cluster, s, flock_config));
      servers[static_cast<size_t>(s)]->RegisterAll([&](uint16_t id, RpcHandler h) {
        flock_servers.back()->RegisterHandler(id, h);
      });
      flock_servers.back()->StartServer(31);
    }
    for (int c = 0; c < config.num_clients; ++c) {
      flock_clients.push_back(
          std::make_unique<FlockRuntime>(cluster, kServers + c, flock_config));
      FlockRuntime& runtime = *flock_clients.back();
      runtime.StartClient();
      std::vector<Connection*> conns;
      std::vector<std::vector<RemoteMr>> mrs(kServers);
      for (int s = 0; s < kServers; ++s) {
        conns.push_back(runtime.Connect(
            *flock_servers[static_cast<size_t>(s)],
            static_cast<uint32_t>(config.threads_per_client)));
        for (const auto& span : servers[static_cast<size_t>(s)]->primary()->spans()) {
          mrs[static_cast<size_t>(s)].push_back(
              conns.back()->AttachMreg(span.addr, span.length));
        }
      }
      for (int t = 0; t < config.threads_per_client; ++t) {
        FlockThread* thread = runtime.CreateThread(t % 30);
        for (int w = 0; w < config.coroutines_per_thread; ++w) {
          transports.push_back(std::make_unique<txn::FlockTxTransport>(
              runtime, *thread, conns, mrs));
          coordinators.push_back(std::make_unique<txn::TxCoordinator>(
              *transports.back(), kServers, kReplication, config.mode));
          cluster.sim().Spawn(TxnWorker(&cluster, coordinators.back().get(), &config,
                                        SplitMix64(seed), &shared));
        }
      }
    }
  } else {
    // FaSST-like: UD RPC, one server worker per client thread ("a client only
    // communicates with its peer thread at the server").
    for (int s = 0; s < kServers; ++s) {
      ud_servers.push_back(std::make_unique<baselines::UdRpcServer>(
          cluster, s,
          baselines::UdRpcServer::Config{
              .worker_threads = config.threads_per_client,
              .recv_pool = 512}));
      servers[static_cast<size_t>(s)]->RegisterAll([&](uint16_t id, RpcHandler h) {
        ud_servers.back()->RegisterHandler(id, h);
      });
      ud_servers.back()->Start();
    }
    for (int c = 0; c < config.num_clients; ++c) {
      ud_clients.push_back(
          std::make_unique<baselines::UdRpcClient>(cluster, kServers + c));
      for (int t = 0; t < config.threads_per_client; ++t) {
        baselines::UdRpcClient::Thread* thread = ud_clients.back()->CreateThread(
            t % 30, /*recv_pool=*/256);
        thread->StartPoller();  // FaSST's dedicated response coroutine
        std::vector<baselines::UdEndpoint> peers;
        for (int s = 0; s < kServers; ++s) {
          peers.push_back(ud_servers[static_cast<size_t>(s)]->endpoint(t));
        }
        for (int w = 0; w < config.coroutines_per_thread; ++w) {
          transports.push_back(std::make_unique<txn::FasstTxTransport>(
              *thread, peers, 2 * kMillisecond));
          coordinators.push_back(std::make_unique<txn::TxCoordinator>(
              *transports.back(), kServers, kReplication));
          cluster.sim().Spawn(TxnWorker(&cluster, coordinators.back().get(), &config,
                                        SplitMix64(seed), &shared));
        }
      }
    }
  }

  cluster.sim().RunFor(config.warmup);
  shared.measuring = true;
  cluster.sim().RunFor(config.measure);
  shared.measuring = false;

  TxnBenchResult result;
  result.committed = shared.committed;
  result.aborts = shared.aborts;
  result.failed = shared.failed;
  result.mtps = static_cast<double>(shared.committed) /
                (static_cast<double>(config.measure) / 1e9) / 1e6;
  result.p50_ns = shared.latency.Median();
  result.p99_ns = shared.latency.P99();
  return result;
}

}  // namespace flock::bench
