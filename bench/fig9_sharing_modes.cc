// Figure 9 — QP-sharing approaches compared (§8.3.1).
//
// 23 clients, 64 B request/response, 8 outstanding per thread, all server
// cores handling requests. Four configurations:
//   * Flock      — Flock-synchronization-based sharing with QP scheduling;
//   * no sharing — dedicated QP per thread (two-RDMA-write RPC);
//   * FaRM 2/QP  — 2 threads share a QP under a spinlock;
//   * FaRM 4/QP  — 4 threads share a QP under a spinlock.
// Paper result: identical up to 8 threads; Flock >= 62% / 133% faster at
// 32 / 48 threads with 27% / 49% lower p99; lock sharing tracks no-sharing.
//
// Usage: fig9_sharing_modes [--measure_ms=3] [--warmup_ms=2]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/rpc_bench_lib.h"

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "fig9_sharing_modes");
  const flock::Nanos warmup = flags.Int("warmup_ms", 2) * flock::kMillisecond;
  const flock::Nanos measure = flags.Int("measure_ms", 3) * flock::kMillisecond;

  PrintBanner("Figure 9: RPC throughput under QP sharing approaches (Mops/s)");
  std::printf("%8s %10s %12s %12s %12s | %12s %12s\n", "thr/cli", "FLock",
              "no-sharing", "FaRM 2t/QP", "FaRM 4t/QP", "FLock p99us",
              "no-shr p99us");
  for (int threads : {1, 2, 4, 8, 16, 32, 48}) {
    RpcBenchConfig config;
    config.num_clients = 23;
    config.threads_per_client = threads;
    config.outstanding = 8;
    config.req_bytes = 64;
    config.resp_bytes = 64;
    config.warmup = warmup;
    config.measure = measure;

    const RpcBenchResult fl = RunFlockRpc(config);

    config.threads_per_qp = 1;
    const RpcBenchResult none = RunRcRpc(config);
    config.threads_per_qp = 2;
    const RpcBenchResult farm2 = RunRcRpc(config);
    config.threads_per_qp = 4;
    const RpcBenchResult farm4 = RunRcRpc(config);

    std::printf("%8d %10.1f %12.1f %12.1f %12.1f | %12.1f %12.1f\n", threads,
                fl.mops, none.mops, farm2.mops, farm4.mops, fl.p99_ns / 1e3,
                none.p99_ns / 1e3);
    std::printf("CSV,fig9,%d,%.2f,%.2f,%.2f,%.2f,%ld,%ld\n", threads, fl.mops,
                none.mops, farm2.mops, farm4.mops, static_cast<long>(fl.p99_ns),
                static_cast<long>(none.p99_ns));
    json.Row({{"threads", threads},
              {"flock_mops", fl.mops},
              {"no_sharing_mops", none.mops},
              {"farm2_mops", farm2.mops},
              {"farm4_mops", farm4.mops},
              {"flock_p99_ns", fl.p99_ns},
              {"no_sharing_p99_ns", none.p99_ns}});
    std::fflush(stdout);
  }
  return 0;
}
