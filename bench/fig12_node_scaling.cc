// Figure 12 — node scalability (§8.4).
//
// Client *processes* scale from 23 to 368 (spawned across the 23 client
// nodes, up to 16 per node), against one server. Three configurations:
//   * 1 thr / 1 QP   — single-thread processes: no coalescing is possible
//                      (Flock's worst case; throughput rides the packet rate);
//   * 2 thr / 1 QP   — two threads share one lane (Flock sharing);
//   * 2 thr / 2 QPs  — two threads, dedicated lanes (native-RC-style).
// Paper result: 2thr/1QP beats 2thr/2QPs by 10–30% in throughput with
// similar p99 reductions — fewer QPs, better performance.
//
// Usage: fig12_node_scaling [--measure_ms=3] [--warmup_ms=2] [--shards=1]
//        [--workers=0]
//
// --shards runs the simulation kernel sharded (wall-clock only: the trace,
// and therefore every reported number, is bit-identical at any shard count);
// at the paper's full 24-node scale this is what makes the figure complete
// in minutes on a multi-core host.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/rpc_bench_lib.h"

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "fig12_node_scaling");
  const flock::Nanos warmup = flags.Int("warmup_ms", 2) * flock::kMillisecond;
  const flock::Nanos measure = flags.Int("measure_ms", 3) * flock::kMillisecond;
  const int shards = static_cast<int>(flags.Int("shards", 1));
  const int workers = static_cast<int>(flags.Int("workers", 0));

  PrintBanner("Figure 12: node scalability, 64B RPC, 8 outstanding");
  std::printf("%9s | %17s | %17s | %17s\n", "#clients", "1thr/1QP  p50/p99",
              "2thr/1QP  p50/p99", "2thr/2QP  p50/p99");
  for (int clients : {23, 46, 92, 184, 368}) {
    const int processes_per_node = clients / 23;
    RpcBenchConfig config;
    config.num_clients = 23;
    config.processes_per_client = processes_per_node;
    config.outstanding = 8;
    config.req_bytes = 64;
    config.resp_bytes = 64;
    config.warmup = warmup;
    config.measure = measure;
    config.num_shards = shards;
    config.num_workers = workers;

    config.threads_per_client = 1;
    config.lanes_per_connection = 1;
    const RpcBenchResult one_one = RunFlockRpc(config);

    config.threads_per_client = 2;
    config.lanes_per_connection = 1;
    const RpcBenchResult two_one = RunFlockRpc(config);

    config.lanes_per_connection = 2;
    const RpcBenchResult two_two = RunFlockRpc(config);

    std::printf(
        "%9d | %6.1fM %4.0f/%4.0fus | %6.1fM %4.0f/%4.0fus | %6.1fM %4.0f/%4.0fus\n",
        clients, one_one.mops, one_one.p50_ns / 1e3, one_one.p99_ns / 1e3,
        two_one.mops, two_one.p50_ns / 1e3, two_one.p99_ns / 1e3, two_two.mops,
        two_two.p50_ns / 1e3, two_two.p99_ns / 1e3);
    std::printf("CSV,fig12,%d,1t1q,%.2f,%ld,%ld\n", clients, one_one.mops,
                static_cast<long>(one_one.p50_ns), static_cast<long>(one_one.p99_ns));
    std::printf("CSV,fig12,%d,2t1q,%.2f,%ld,%ld\n", clients, two_one.mops,
                static_cast<long>(two_one.p50_ns), static_cast<long>(two_one.p99_ns));
    std::printf("CSV,fig12,%d,2t2q,%.2f,%ld,%ld\n", clients, two_two.mops,
                static_cast<long>(two_two.p50_ns), static_cast<long>(two_two.p99_ns));
    json.Row({{"clients", clients}, {"mode", "1t1q"}, {"mops", one_one.mops},
              {"p50_ns", one_one.p50_ns}, {"p99_ns", one_one.p99_ns}});
    json.Row({{"clients", clients}, {"mode", "2t1q"}, {"mops", two_one.mops},
              {"p50_ns", two_one.p50_ns}, {"p99_ns", two_one.p99_ns}});
    json.Row({{"clients", clients}, {"mode", "2t2q"}, {"mops", two_two.mops},
              {"p50_ns", two_two.p50_ns}, {"p99_ns", two_two.p99_ns}});
    std::fflush(stdout);
  }
  return 0;
}
