// Cost-model sensitivity ablation (beyond the paper's figures).
//
// The reproduction's claims are about *shapes*: Flock beats the UD baseline
// at high fan-in, and RC collapses past the NIC cache capacity. This bench
// perturbs the two most load-bearing calibrated constants — the NIC
// connection-cache capacity and the PCIe fetch latency — by 2x in both
// directions and re-runs the headline comparison (23 clients x 32 threads,
// outstanding 8). The *who-wins* conclusion must hold at every point; only
// knee positions may move.
//
// Usage: ablation_sensitivity [--measure_ms=2] [--warmup_ms=2]
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/rpc_bench_lib.h"

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "ablation_sensitivity");
  const flock::Nanos warmup = flags.Int("warmup_ms", 2) * flock::kMillisecond;
  const flock::Nanos measure = flags.Int("measure_ms", 2) * flock::kMillisecond;

  PrintBanner("Sensitivity: Flock vs eRPC at 23x32 threads under model perturbation");
  std::printf("%12s %12s | %10s %10s %8s\n", "cache(QPs)", "pcie(ns)", "FLock Mops",
              "eRPC Mops", "ratio");
  for (uint32_t cache : {384u, 768u, 1536u}) {
    for (flock::Nanos pcie : {450, 900, 1800}) {
      RpcBenchConfig config;
      config.num_clients = 23;
      config.threads_per_client = 32;
      config.outstanding = 8;
      config.warmup = warmup;
      config.measure = measure;
      flock::sim::CostModel cost;
      cost.nic_qp_cache_entries = cache;
      cost.nic_pcie_fetch = pcie;
      // Both worlds share the perturbed model via the cluster config.
      // (RunFlockRpc/RunUdRpc construct their own clusters; pass through.)
      config.cost = cost;

      const RpcBenchResult fl = RunFlockRpc(config);
      const RpcBenchResult ud = RunUdRpc(config);
      std::printf("%12u %12ld | %10.1f %10.1f %8.2f %s\n", cache,
                  static_cast<long>(pcie), fl.mops, ud.mops,
                  ud.mops > 0 ? fl.mops / ud.mops : 0.0,
                  fl.mops > ud.mops ? "" : "  <-- CONCLUSION FLIPPED");
      std::printf("CSV,sensitivity,%u,%ld,%.2f,%.2f\n", cache, static_cast<long>(pcie),
                  fl.mops, ud.mops);
      json.Row({{"qp_cache", cache}, {"pcie_fetch_ns", static_cast<int64_t>(pcie)},
                {"flock_mops", fl.mops}, {"erpc_mops", ud.mops}});
      std::fflush(stdout);
    }
  }
  return 0;
}
