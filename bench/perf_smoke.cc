// Wall-clock performance smoke test for the simulation kernel itself.
//
// Every figure reproduction is bottlenecked by how fast the discrete-event
// kernel and the Flock hot path run on the *host* CPU, not by simulated
// fidelity. This bench drives a fixed fan-in echo workload (several client
// nodes closed-loop against one server) for a fixed span of simulated time
// and reports host-side throughput: simulator events per wall-clock second,
// completed RPCs per wall-clock second, and peak RSS. Results are written to
// BENCH_perf_smoke.json (override with --json=<path>) so successive PRs have
// a perf trajectory to compare against.
//
// Usage:
//   perf_smoke [--clients=4] [--threads=8] [--payload=64] [--sim-ms=20]
//              [--repeats=3] [--json=BENCH_perf_smoke.json]
#include <sys/resource.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/flock/flock.h"

namespace flock::bench {
namespace {

struct SmokeResult {
  double wall_s = 0;
  uint64_t events = 0;
  uint64_t rpcs = 0;
  double events_per_s = 0;
  double rpcs_per_s = 0;
  double events_per_rpc = 0;  // event-queue traffic per completed RPC
  double sim_mops = 0;  // simulated throughput, for fidelity cross-checks
  // Kernel delivery counters (see Simulator): how the resumptions that drove
  // this run were delivered.
  KernelCounters kernel;
  // Control-plane lane census across all connections at end of run. A
  // fault-free run must report every lane healthy and zero reconnects.
  LaneCensus lanes;
};

sim::Proc EchoWorker(Connection* conn, FlockThread* thread, uint32_t payload_bytes,
                     uint64_t* done) {
  std::vector<uint8_t> payload(payload_bytes, 0x5a);
  std::vector<uint8_t> resp;
  for (;;) {
    co_await conn->Call(*thread, 1, payload.data(), payload_bytes, &resp);
    (*done)++;
  }
}

SmokeResult RunSmoke(int clients, int threads_per_client, uint32_t payload_bytes,
                     Nanos sim_span) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 1 + clients,
                                                .cores_per_node = 34});
  FlockConfig config;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(1, [](const uint8_t* req, uint32_t req_len, uint8_t* resp,
                               uint32_t, Nanos* cpu) -> uint32_t {
    *cpu = 50;
    std::memcpy(resp, req, req_len);
    return req_len;
  });
  server.StartServer(4);

  std::vector<std::unique_ptr<FlockRuntime>> client_rts;
  std::vector<Connection*> conns;
  uint64_t done = 0;
  for (int c = 0; c < clients; ++c) {
    auto rt = std::make_unique<FlockRuntime>(cluster, 1 + c, config);
    rt->StartClient();
    Connection* conn = rt->Connect(server, static_cast<uint32_t>(threads_per_client));
    conns.push_back(conn);
    for (int t = 0; t < threads_per_client; ++t) {
      cluster.sim().Spawn(
          EchoWorker(conn, rt->CreateThread(t), payload_bytes, &done));
    }
    client_rts.push_back(std::move(rt));
  }

  // Warm up (fills pools, rings, and scheduler state), then measure.
  cluster.sim().RunFor(sim_span / 4);
  const KernelCounters before = KernelCounters::Capture(cluster.sim());
  const uint64_t done_before = done;
  const WallTimer timer;
  cluster.sim().RunFor(sim_span);

  SmokeResult r;
  r.wall_s = timer.Seconds();
  r.kernel = KernelCounters::Capture(cluster.sim()).Since(before);
  r.events = r.kernel.events;
  r.rpcs = done - done_before;
  r.events_per_s = static_cast<double>(r.events) / r.wall_s;
  r.rpcs_per_s = static_cast<double>(r.rpcs) / r.wall_s;
  r.events_per_rpc =
      r.rpcs == 0 ? 0 : static_cast<double>(r.events) / static_cast<double>(r.rpcs);
  r.sim_mops = static_cast<double>(r.rpcs) / static_cast<double>(sim_span) * 1e3;
  for (Connection* conn : conns) {
    r.lanes.Add(*conn);
  }
  return r;
}

int64_t PeakRssKb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int clients = static_cast<int>(flags.Int("clients", 4));
  const int threads = static_cast<int>(flags.Int("threads", 8));
  const uint32_t payload = static_cast<uint32_t>(flags.Int("payload", 64));
  const Nanos sim_span = flags.Int("sim-ms", 20) * kMillisecond;
  const int repeats = static_cast<int>(flags.Int("repeats", 3));
  JsonDump json(flags.Str("json", "BENCH_perf_smoke.json"), "perf_smoke");

  PrintBanner("perf_smoke: wall-clock kernel throughput");
  std::printf("%-8s %12s %12s %12s %10s %10s\n", "run", "events/s", "rpcs/s",
              "events", "sim Mops", "wall ms");

  int run = 0;
  const SmokeResult best = BestOf(
      repeats,
      [&] {
        const SmokeResult r = RunSmoke(clients, threads, payload, sim_span);
        std::printf("%-8d %12.0f %12.0f %12lu %10.2f %10.1f\n", run,
                    r.events_per_s, r.rpcs_per_s,
                    static_cast<unsigned long>(r.events), r.sim_mops,
                    r.wall_s * 1e3);
        std::printf("CSV,perf_smoke,%d,%.0f,%.0f,%lu,%.2f\n", run,
                    r.events_per_s, r.rpcs_per_s,
                    static_cast<unsigned long>(r.events), r.sim_mops);
        ++run;
        return r;
      },
      [](const SmokeResult& r) { return r.events_per_s; });
  const int64_t rss_kb = PeakRssKb();
  std::printf("best: %.0f events/s, %.0f rpcs/s, %.1f events/rpc, peak RSS %ld KB\n",
              best.events_per_s, best.rpcs_per_s, best.events_per_rpc,
              static_cast<long>(rss_kb));
  std::printf(
      "resume delivery: %lu total, %lu direct (fifo-server), %lu coalesced "
      "(wake batches)\n",
      static_cast<unsigned long>(best.kernel.resumes),
      static_cast<unsigned long>(best.kernel.direct_resumes),
      static_cast<unsigned long>(best.kernel.coalesced_wakes));

  JsonRow row;
  row.Add("clients", clients)
      .Add("threads_per_client", threads)
      .Add("payload_bytes", payload)
      .Add("sim_ms", static_cast<int64_t>(sim_span / kMillisecond))
      .Add("events_per_sec", best.events_per_s)
      .Add("rpcs_per_sec", best.rpcs_per_s)
      .Add("events", best.events)
      .Add("rpcs", best.rpcs)
      .Add("events_per_rpc", best.events_per_rpc)
      .Add("resumes", best.kernel.resumes)
      .Add("direct_resumes", best.kernel.direct_resumes)
      .Add("coalesced_wakes", best.kernel.coalesced_wakes);
  best.lanes.AppendTo(&row, /*include_retired=*/false);
  row.Add("sim_mops", best.sim_mops)
      .Add("wall_s", best.wall_s)
      .Add("peak_rss_kb", rss_kb);
  json.Row(row);
  return 0;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) { return flock::bench::Main(argc, argv); }
