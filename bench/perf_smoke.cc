// Wall-clock performance smoke test for the simulation kernel itself.
//
// Every figure reproduction is bottlenecked by how fast the discrete-event
// kernel and the Flock hot path run on the *host* CPU, not by simulated
// fidelity. This bench drives a fixed fan-in echo workload (several client
// nodes closed-loop against one server) for a fixed span of simulated time
// and reports host-side throughput: simulator events per wall-clock second,
// completed RPCs per wall-clock second, and peak RSS. Results are written to
// BENCH_perf_smoke.json (override with --json=<path>) so successive PRs have
// a perf trajectory to compare against.
//
// Usage:
//   perf_smoke [--clients=4] [--threads=8] [--payload=64] [--sim-ms=20]
//              [--repeats=3] [--json=BENCH_perf_smoke.json]
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/flock/flock.h"

namespace flock::bench {
namespace {

struct SmokeResult {
  double wall_s = 0;
  uint64_t events = 0;
  uint64_t rpcs = 0;
  double events_per_s = 0;
  double rpcs_per_s = 0;
  double events_per_rpc = 0;  // event-queue traffic per completed RPC
  double sim_mops = 0;  // simulated throughput, for fidelity cross-checks
  // Kernel delivery counters (see Simulator): how the resumptions that drove
  // this run were delivered.
  uint64_t resumes = 0;
  uint64_t direct_resumes = 0;
  uint64_t coalesced_wakes = 0;
  // Control-plane lane census across all connections at end of run. A
  // fault-free run must report every lane healthy and zero reconnects.
  uint64_t lanes_healthy = 0;
  uint64_t lanes_quarantined = 0;
  uint64_t lanes_reconnecting = 0;
  uint64_t lane_reconnects = 0;
};

sim::Proc EchoWorker(Connection* conn, FlockThread* thread, uint32_t payload_bytes,
                     uint64_t* done) {
  std::vector<uint8_t> payload(payload_bytes, 0x5a);
  std::vector<uint8_t> resp;
  for (;;) {
    co_await conn->Call(*thread, 1, payload.data(), payload_bytes, &resp);
    (*done)++;
  }
}

SmokeResult RunSmoke(int clients, int threads_per_client, uint32_t payload_bytes,
                     Nanos sim_span) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 1 + clients,
                                                .cores_per_node = 34});
  FlockConfig config;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(1, [](const uint8_t* req, uint32_t req_len, uint8_t* resp,
                               uint32_t, Nanos* cpu) -> uint32_t {
    *cpu = 50;
    std::memcpy(resp, req, req_len);
    return req_len;
  });
  server.StartServer(4);

  std::vector<std::unique_ptr<FlockRuntime>> client_rts;
  std::vector<Connection*> conns;
  uint64_t done = 0;
  for (int c = 0; c < clients; ++c) {
    auto rt = std::make_unique<FlockRuntime>(cluster, 1 + c, config);
    rt->StartClient();
    Connection* conn = rt->Connect(server, static_cast<uint32_t>(threads_per_client));
    conns.push_back(conn);
    for (int t = 0; t < threads_per_client; ++t) {
      cluster.sim().Spawn(
          EchoWorker(conn, rt->CreateThread(t), payload_bytes, &done));
    }
    client_rts.push_back(std::move(rt));
  }

  // Warm up (fills pools, rings, and scheduler state), then measure.
  cluster.sim().RunFor(sim_span / 4);
  const uint64_t events_before = cluster.sim().events_processed();
  const uint64_t done_before = done;
  const uint64_t resumes_before = cluster.sim().resumes();
  const uint64_t direct_before = cluster.sim().direct_resumes();
  const uint64_t coalesced_before = cluster.sim().coalesced_wakes();
  const auto start = std::chrono::steady_clock::now();
  cluster.sim().RunFor(sim_span);
  const auto stop = std::chrono::steady_clock::now();

  SmokeResult r;
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.events = cluster.sim().events_processed() - events_before;
  r.rpcs = done - done_before;
  r.events_per_s = static_cast<double>(r.events) / r.wall_s;
  r.rpcs_per_s = static_cast<double>(r.rpcs) / r.wall_s;
  r.events_per_rpc =
      r.rpcs == 0 ? 0 : static_cast<double>(r.events) / static_cast<double>(r.rpcs);
  r.sim_mops = static_cast<double>(r.rpcs) / static_cast<double>(sim_span) * 1e3;
  r.resumes = cluster.sim().resumes() - resumes_before;
  r.direct_resumes = cluster.sim().direct_resumes() - direct_before;
  r.coalesced_wakes = cluster.sim().coalesced_wakes() - coalesced_before;
  for (Connection* conn : conns) {
    const Connection::LaneStates states = conn->CountLaneStates();
    r.lanes_healthy += states.healthy;
    r.lanes_quarantined += states.quarantined;
    r.lanes_reconnecting += states.reconnecting;
    r.lane_reconnects += conn->lane_reconnects();
  }
  return r;
}

int64_t PeakRssKb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int clients = static_cast<int>(flags.Int("clients", 4));
  const int threads = static_cast<int>(flags.Int("threads", 8));
  const uint32_t payload = static_cast<uint32_t>(flags.Int("payload", 64));
  const Nanos sim_span = flags.Int("sim-ms", 20) * kMillisecond;
  const int repeats = static_cast<int>(flags.Int("repeats", 3));
  JsonDump json(flags.Str("json", "BENCH_perf_smoke.json"), "perf_smoke");

  PrintBanner("perf_smoke: wall-clock kernel throughput");
  std::printf("%-8s %12s %12s %12s %10s %10s\n", "run", "events/s", "rpcs/s",
              "events", "sim Mops", "wall ms");

  SmokeResult best;
  for (int i = 0; i < repeats; ++i) {
    const SmokeResult r = RunSmoke(clients, threads, payload, sim_span);
    std::printf("%-8d %12.0f %12.0f %12lu %10.2f %10.1f\n", i, r.events_per_s,
                r.rpcs_per_s, static_cast<unsigned long>(r.events), r.sim_mops,
                r.wall_s * 1e3);
    std::printf("CSV,perf_smoke,%d,%.0f,%.0f,%lu,%.2f\n", i, r.events_per_s,
                r.rpcs_per_s, static_cast<unsigned long>(r.events), r.sim_mops);
    if (r.events_per_s > best.events_per_s) {
      best = r;
    }
  }
  const int64_t rss_kb = PeakRssKb();
  std::printf("best: %.0f events/s, %.0f rpcs/s, %.1f events/rpc, peak RSS %ld KB\n",
              best.events_per_s, best.rpcs_per_s, best.events_per_rpc,
              static_cast<long>(rss_kb));
  std::printf(
      "resume delivery: %lu total, %lu direct (fifo-server), %lu coalesced "
      "(wake batches)\n",
      static_cast<unsigned long>(best.resumes),
      static_cast<unsigned long>(best.direct_resumes),
      static_cast<unsigned long>(best.coalesced_wakes));

  json.Row({{"clients", clients},
            {"threads_per_client", threads},
            {"payload_bytes", payload},
            {"sim_ms", static_cast<int64_t>(sim_span / kMillisecond)},
            {"events_per_sec", best.events_per_s},
            {"rpcs_per_sec", best.rpcs_per_s},
            {"events", best.events},
            {"rpcs", best.rpcs},
            {"events_per_rpc", best.events_per_rpc},
            {"resumes", best.resumes},
            {"direct_resumes", best.direct_resumes},
            {"coalesced_wakes", best.coalesced_wakes},
            {"lanes_healthy", best.lanes_healthy},
            {"lanes_quarantined", best.lanes_quarantined},
            {"lanes_reconnecting", best.lanes_reconnecting},
            {"lane_reconnects", best.lane_reconnects},
            {"sim_mops", best.sim_mops},
            {"wall_s", best.wall_s},
            {"peak_rss_kb", rss_kb}});
  return 0;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) { return flock::bench::Main(argc, argv); }
