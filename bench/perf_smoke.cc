// Wall-clock performance smoke test for the simulation kernel itself.
//
// Every figure reproduction is bottlenecked by how fast the discrete-event
// kernel and the Flock hot path run on the *host* CPU, not by simulated
// fidelity. This bench drives a fixed fan-in echo workload (several client
// nodes closed-loop against one or more server nodes) for a fixed span of
// simulated time and reports host-side throughput: simulator events per
// wall-clock second, completed RPCs per wall-clock second, and peak RSS.
//
// Besides the single-shard default row it emits a shard-scaling pair — the
// same larger multi-server world on 1 shard and on --scale-shards shards —
// whose event counts, RPC counts and trace hashes must match exactly (the
// sharded kernel replays the sequential trace, DESIGN.md §12) while the
// wall-clock improves with the host cores available. scripts/check_perf.py
// gates both the identity and the speedup. Results are written to
// BENCH_perf_smoke.json (override with --json=<path>) so successive PRs have
// a perf trajectory to compare against.
//
// Usage:
//   perf_smoke [--clients=4] [--threads=8] [--payload=64] [--sim-ms=20]
//              [--repeats=3] [--shards=1] [--workers=0] [--servers=1]
//              [--scale=1] [--scale-shards=8] [--scale-servers=4]
//              [--scale-clients=12] [--scale-sim-ms=4]
//              [--json=BENCH_perf_smoke.json]
#include <sys/resource.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/flock/flock.h"

namespace flock::bench {
namespace {

struct SmokeResult {
  double wall_s = 0;
  uint64_t events = 0;
  uint64_t rpcs = 0;
  double events_per_s = 0;
  double rpcs_per_s = 0;
  double events_per_rpc = 0;  // event-queue traffic per completed RPC
  double sim_mops = 0;  // simulated throughput, for fidelity cross-checks
  uint64_t trace_hash = 0;  // per-node device stats + completions, node order
  // Kernel delivery counters (see Simulator): how the resumptions that drove
  // this run were delivered.
  KernelCounters kernel;
  // Control-plane lane census across all connections at end of run. A
  // fault-free run must report every lane healthy and zero reconnects.
  LaneCensus lanes;
};

struct SmokeConfig {
  int servers = 1;
  int clients = 4;
  int threads_per_client = 8;
  uint32_t payload_bytes = 64;
  Nanos sim_span = 20 * kMillisecond;
  int shards = 1;
  int workers = 0;
};

sim::Proc EchoWorker(Connection* conn, FlockThread* thread, uint32_t payload_bytes,
                     uint64_t* done) {
  std::vector<uint8_t> payload(payload_bytes, 0x5a);
  std::vector<uint8_t> resp;
  for (;;) {
    co_await conn->Call(*thread, 1, payload.data(), payload_bytes, &resp);
    (*done)++;
  }
}

SmokeResult RunSmoke(const SmokeConfig& cfg) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = cfg.servers + cfg.clients,
                             .cores_per_node = 34,
                             .num_shards = cfg.shards,
                             .num_workers = cfg.workers});
  FlockConfig config;
  std::vector<std::unique_ptr<FlockRuntime>> servers;
  for (int s = 0; s < cfg.servers; ++s) {
    servers.push_back(std::make_unique<FlockRuntime>(cluster, s, config));
    servers.back()->RegisterHandler(
        1, [](const uint8_t* req, uint32_t req_len, uint8_t* resp, uint32_t,
              Nanos* cpu) -> uint32_t {
          *cpu = 50;
          std::memcpy(resp, req, req_len);
          return req_len;
        });
    servers.back()->StartServer(4);
  }

  std::vector<std::unique_ptr<FlockRuntime>> client_rts;
  std::vector<Connection*> conns;
  // Completions are counted per client node: all of a node's workers run on
  // its shard, so the counter stays single-writer under sharding and the
  // node-order merge below is deterministic.
  std::vector<uint64_t> done(static_cast<size_t>(cfg.clients), 0);
  for (int c = 0; c < cfg.clients; ++c) {
    const int node = cfg.servers + c;
    auto rt = std::make_unique<FlockRuntime>(cluster, node, config);
    rt->StartClient();
    Connection* conn = rt->Connect(
        *servers[static_cast<size_t>(c % cfg.servers)],
        static_cast<uint32_t>(cfg.threads_per_client));
    conns.push_back(conn);
    for (int t = 0; t < cfg.threads_per_client; ++t) {
      cluster.sim().Spawn(EchoWorker(conn, rt->CreateThread(t),
                                     cfg.payload_bytes,
                                     &done[static_cast<size_t>(c)]),
                          node);
    }
    client_rts.push_back(std::move(rt));
  }

  // Warm up (fills pools, rings, and scheduler state), then measure.
  cluster.sim().RunFor(cfg.sim_span / 4);
  const KernelCounters before = KernelCounters::Capture(cluster.sim());
  uint64_t done_before = 0;
  for (const uint64_t d : done) {
    done_before += d;
  }
  const WallTimer timer;
  cluster.sim().RunFor(cfg.sim_span);

  SmokeResult r;
  r.wall_s = timer.Seconds();
  r.kernel = KernelCounters::Capture(cluster.sim()).Since(before);
  r.events = r.kernel.events;
  for (const uint64_t d : done) {
    r.rpcs += d;
  }
  r.rpcs -= done_before;
  r.events_per_s = static_cast<double>(r.events) / r.wall_s;
  r.rpcs_per_s = static_cast<double>(r.rpcs) / r.wall_s;
  r.events_per_rpc =
      r.rpcs == 0 ? 0 : static_cast<double>(r.events) / static_cast<double>(r.rpcs);
  r.sim_mops =
      static_cast<double>(r.rpcs) / static_cast<double>(cfg.sim_span) * 1e3;
  TraceHash hash;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const verbs::Device::Stats& d = cluster.device(n).stats();
    hash.Mix(d.tx_msgs).Mix(d.tx_bytes).Mix(d.tx_wire_bytes).Mix(d.tx_packets);
    hash.Mix(d.rx_msgs).Mix(d.rx_packets).Mix(d.cqes_dma_ed);
  }
  for (const uint64_t d : done) {
    hash.Mix(d);
  }
  r.trace_hash = hash.value();
  for (Connection* conn : conns) {
    r.lanes.Add(*conn);
  }
  return r;
}

int64_t PeakRssKb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  SmokeConfig cfg;
  cfg.clients = static_cast<int>(flags.Int("clients", 4));
  cfg.threads_per_client = static_cast<int>(flags.Int("threads", 8));
  cfg.payload_bytes = static_cast<uint32_t>(flags.Int("payload", 64));
  cfg.sim_span = flags.Int("sim-ms", 20) * kMillisecond;
  cfg.shards = static_cast<int>(flags.Int("shards", 1));
  cfg.workers = static_cast<int>(flags.Int("workers", 0));
  cfg.servers = static_cast<int>(flags.Int("servers", 1));
  const int repeats = static_cast<int>(flags.Int("repeats", 3));
  const bool scale = flags.Bool("scale", true);
  const int host_cpus = static_cast<int>(std::thread::hardware_concurrency());
  JsonDump json(flags.Str("json", "BENCH_perf_smoke.json"), "perf_smoke");

  PrintBanner("perf_smoke: wall-clock kernel throughput");
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "run", "events/s", "rpcs/s",
              "events", "sim Mops", "wall ms");

  int run = 0;
  const SmokeResult best = BestOf(
      repeats,
      [&] {
        const SmokeResult r = RunSmoke(cfg);
        std::printf("%-10d %12.0f %12.0f %12lu %10.2f %10.1f\n", run,
                    r.events_per_s, r.rpcs_per_s,
                    static_cast<unsigned long>(r.events), r.sim_mops,
                    r.wall_s * 1e3);
        std::printf("CSV,perf_smoke,%d,%.0f,%.0f,%lu,%.2f\n", run,
                    r.events_per_s, r.rpcs_per_s,
                    static_cast<unsigned long>(r.events), r.sim_mops);
        ++run;
        return r;
      },
      [](const SmokeResult& r) { return r.events_per_s; });
  const int64_t rss_kb = PeakRssKb();
  std::printf("best: %.0f events/s, %.0f rpcs/s, %.1f events/rpc, peak RSS %ld KB\n",
              best.events_per_s, best.rpcs_per_s, best.events_per_rpc,
              static_cast<long>(rss_kb));
  std::printf(
      "resume delivery: %lu total, %lu direct (fifo-server), %lu coalesced "
      "(wake batches)\n",
      static_cast<unsigned long>(best.kernel.resumes),
      static_cast<unsigned long>(best.kernel.direct_resumes),
      static_cast<unsigned long>(best.kernel.coalesced_wakes));

  JsonRow row;
  row.Add("config", "default")
      .Add("clients", cfg.clients)
      .Add("threads_per_client", cfg.threads_per_client)
      .Add("payload_bytes", cfg.payload_bytes)
      .Add("sim_ms", static_cast<int64_t>(cfg.sim_span / kMillisecond))
      .Add("servers", cfg.servers)
      .Add("shards", cfg.shards)
      .Add("host_cpus", host_cpus)
      .Add("events_per_sec", best.events_per_s)
      .Add("rpcs_per_sec", best.rpcs_per_s)
      .Add("events", best.events)
      .Add("rpcs", best.rpcs)
      .Add("events_per_rpc", best.events_per_rpc)
      .Add("resumes", best.kernel.resumes)
      .Add("direct_resumes", best.kernel.direct_resumes)
      .Add("coalesced_wakes", best.kernel.coalesced_wakes);
  best.lanes.AppendTo(&row, /*include_retired=*/false);
  row.Add("trace_hash", std::to_string(best.trace_hash))
      .Add("sim_mops", best.sim_mops)
      .Add("wall_s", best.wall_s)
      .Add("peak_rss_kb", rss_kb);
  json.Row(row);

  if (scale) {
    // Shard-scaling pair: a larger multi-server world (several servers break
    // the single-dispatcher serial bottleneck, so shards have parallel work),
    // once sequential and once sharded. Identical traces, different clocks.
    SmokeConfig big;
    big.servers = static_cast<int>(flags.Int("scale-servers", 4));
    big.clients = static_cast<int>(flags.Int("scale-clients", 12));
    big.threads_per_client = cfg.threads_per_client;
    big.payload_bytes = cfg.payload_bytes;
    big.sim_span = flags.Int("scale-sim-ms", 4) * kMillisecond;
    const int scale_shards = static_cast<int>(flags.Int("scale-shards", 8));

    PrintBanner("perf_smoke: shard scaling (identical trace, parallel clock)");
    std::printf("%-10s %12s %12s %12s %10s %10s\n", "shards", "events/s",
                "rpcs/s", "events", "sim Mops", "wall ms");
    for (const int shards : {1, scale_shards}) {
      big.shards = shards;
      big.workers = 0;  // one worker per shard, capped at the host cores
      const SmokeResult r = BestOf(
          std::max(1, repeats / 3), [&] { return RunSmoke(big); },
          [](const SmokeResult& rr) { return rr.events_per_s; });
      std::printf("%-10d %12.0f %12.0f %12lu %10.2f %10.1f\n", shards,
                  r.events_per_s, r.rpcs_per_s,
                  static_cast<unsigned long>(r.events), r.sim_mops,
                  r.wall_s * 1e3);
      std::printf("CSV,perf_smoke_scale,%d,%.0f,%.0f,%lu,%.2f\n", shards,
                  r.events_per_s, r.rpcs_per_s,
                  static_cast<unsigned long>(r.events), r.sim_mops);
      JsonRow srow;
      srow.Add("config", shards == 1 ? "scale_seq" : "scale_par")
          .Add("clients", big.clients)
          .Add("threads_per_client", big.threads_per_client)
          .Add("payload_bytes", big.payload_bytes)
          .Add("sim_ms", static_cast<int64_t>(big.sim_span / kMillisecond))
          .Add("servers", big.servers)
          .Add("shards", shards)
          .Add("host_cpus", host_cpus)
          .Add("events_per_sec", r.events_per_s)
          .Add("rpcs_per_sec", r.rpcs_per_s)
          .Add("events", r.events)
          .Add("rpcs", r.rpcs)
          .Add("events_per_rpc", r.events_per_rpc)
          .Add("resumes", r.kernel.resumes)
          .Add("direct_resumes", r.kernel.direct_resumes)
          .Add("coalesced_wakes", r.kernel.coalesced_wakes)
          .Add("trace_hash", std::to_string(r.trace_hash))
          .Add("sim_mops", r.sim_mops)
          .Add("wall_s", r.wall_s);
      json.Row(srow);
    }
  }
  return 0;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) { return flock::bench::Main(argc, argv); }
