// Figures 6, 7, 8 — Flock vs eRPC-like UD RPC (§8.2).
//
// One server, 23 clients, 64 B request/response. Sweeps the number of
// application threads per client {1..48} for outstanding requests per thread
// {1, 4, 8}, reporting throughput (Fig. 6), median latency (Fig. 7) and 99th
// percentile latency (Fig. 8). Paper result: comparable at low thread
// counts; eRPC saturates at ~16 threads on server CPU; Flock scales via QP
// sharing + coalescing, 1.25–3.4x higher throughput.
//
// Usage: fig6_flock_vs_erpc [--measure_ms=3] [--warmup_ms=2] [--max_aqp=256]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/rpc_bench_lib.h"

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "fig6_flock_vs_erpc");
  const flock::Nanos warmup = flags.Int("warmup_ms", 2) * flock::kMillisecond;
  const flock::Nanos measure = flags.Int("measure_ms", 3) * flock::kMillisecond;
  const uint32_t max_aqp = static_cast<uint32_t>(flags.Int("max_aqp", 256));

  const std::vector<int> thread_counts = {1, 2, 4, 8, 16, 32, 48};
  const std::vector<int> outstanding_levels = {1, 4, 8};

  for (int outstanding : outstanding_levels) {
    std::printf("\n==== Figs 6/7/8 (outstanding = %d): 23 clients, 64B RPC ====\n",
                outstanding);
    std::printf("%8s | %10s %9s %9s %7s %6s | %10s %9s %9s %9s\n", "thr/cli",
                "FLock Mops", "p50(us)", "p99(us)", "coal", "AQPs", "eRPC Mops",
                "p50(us)", "p99(us)", "lost");
    for (int threads : thread_counts) {
      RpcBenchConfig config;
      config.num_clients = 23;
      config.threads_per_client = threads;
      config.outstanding = outstanding;
      config.req_bytes = 64;
      config.resp_bytes = 64;
      config.warmup = warmup;
      config.measure = measure;
      config.flock.max_active_qps = max_aqp;

      const RpcBenchResult fl = RunFlockRpc(config);
      const RpcBenchResult ud = RunUdRpc(config);

      std::printf("%8d | %10.1f %9.1f %9.1f %7.2f %6u | %10.1f %9.1f %9.1f %9lu\n",
                  threads, fl.mops, fl.p50_ns / 1e3, fl.p99_ns / 1e3, fl.coalescing,
                  fl.active_qps, ud.mops, ud.p50_ns / 1e3, ud.p99_ns / 1e3,
                  static_cast<unsigned long>(ud.timeouts));
      std::printf("CSV,fig678,%d,%d,flock,%.2f,%ld,%ld,%.2f,%u\n", outstanding,
                  threads, fl.mops, static_cast<long>(fl.p50_ns),
                  static_cast<long>(fl.p99_ns), fl.coalescing, fl.active_qps);
      std::printf("CSV,fig678,%d,%d,erpc,%.2f,%ld,%ld,%.2f,%lu\n", outstanding,
                  threads, ud.mops, static_cast<long>(ud.p50_ns),
                  static_cast<long>(ud.p99_ns), ud.server_cpu,
                  static_cast<unsigned long>(ud.timeouts));
      json.Row({{"outstanding", outstanding},
                {"threads", threads},
                {"system", "flock"},
                {"mops", fl.mops},
                {"p50_ns", fl.p50_ns},
                {"p99_ns", fl.p99_ns},
                {"coalescing", fl.coalescing},
                {"active_qps", fl.active_qps}});
      json.Row({{"outstanding", outstanding},
                {"threads", threads},
                {"system", "erpc"},
                {"mops", ud.mops},
                {"p50_ns", ud.p50_ns},
                {"p99_ns", ud.p99_ns},
                {"server_cpu", ud.server_cpu},
                {"timeouts", ud.timeouts}});
      std::fflush(stdout);
    }
  }
  return 0;
}
