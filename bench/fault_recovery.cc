// Fault-recovery bench: kill one of the client's lanes mid-run and measure
// how much steady-state throughput survives — and, with the control plane's
// lane reconnect enabled (the default), how long the handle takes to climb
// back to fault-free throughput.
//
// Two runs share every parameter except the fault. The baseline run is
// fault-free; the faulted run kills one client-side lane QP at 1/4 of the
// simulated span. Both runs record completions in fixed sim-time buckets:
//   * recovery        — completions inside the final quarter of the span
//                       (long after the kill) as a fraction of baseline,
//                       isolating the steady-state cost of the fault;
//   * recovery_time_ns — sim-ns from the kill until the first bucket whose
//                       completion count is back within 1% of the baseline's
//                       same bucket (-1 if throughput never recovers).
// With --reconnect=1 the lane is re-established through the control plane
// (fresh QP pair, ring resync, replay), so steady state runs at full lane
// count and the bench gates recovery at >= 99%. With --reconnect=0 the
// legacy quarantine-only behaviour applies (one lane short, gate 90%).
//
// Usage:
//   fault_recovery [--threads=16] [--lanes=8] [--payload=64] [--sim-ms=20]
//                  [--timeout-us=200] [--retries=5] [--reconnect=1]
//                  [--min-recovery=0.99] [--json=BENCH_fault_recovery.json]
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/flock/flock.h"

namespace flock::bench {
namespace {

// Sim-time buckets per run; the kill lands exactly on the bucket-10 boundary
// (span/4) so bucketed baseline/faulted comparisons line up.
constexpr int kBuckets = 40;

struct RecoveryResult {
  uint64_t ok = 0;            // RPCs completed successfully over the full run
  uint64_t fail = 0;          // RPCs surfaced as ok=false
  uint64_t window_rpcs = 0;   // completions inside the final-quarter window
  uint64_t retries = 0;
  uint64_t failed_rpcs = 0;
  uint64_t spurious = 0;
  uint64_t client_lane_failures = 0;
  uint64_t server_lane_failures = 0;
  // Control-plane outcome (end-of-run lane census + revival counts).
  LaneCensus lanes;
  uint64_t buckets[kBuckets] = {};  // completions per sim-time bucket
};

sim::Proc EchoWorker(Connection* conn, FlockThread* thread, uint32_t payload_bytes,
                     uint64_t* ok, uint64_t* fail) {
  std::vector<uint8_t> payload(payload_bytes, 0x5a);
  std::vector<uint8_t> resp;
  for (;;) {
    if (co_await conn->Call(*thread, 1, payload.data(), payload_bytes, &resp)) {
      (*ok)++;
    } else {
      (*fail)++;
    }
  }
}

RecoveryResult RunOnce(bool inject, bool reconnect, int threads, uint32_t lanes,
                       uint32_t payload_bytes, Nanos sim_span, Nanos rpc_timeout,
                       uint32_t max_retries) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2,
                                                .cores_per_node = 34});
  FlockConfig server_cfg;
  FlockRuntime server(cluster, 0, server_cfg);
  server.RegisterHandler(1, [](const uint8_t* req, uint32_t req_len, uint8_t* resp,
                               uint32_t, Nanos* cpu) -> uint32_t {
    *cpu = 50;
    std::memcpy(resp, req, req_len);
    return req_len;
  });
  server.StartServer(4);

  FlockConfig client_cfg;
  client_cfg.rpc_timeout = rpc_timeout;
  client_cfg.max_retries = static_cast<uint16_t>(max_retries);
  client_cfg.lane_reconnect = reconnect;
  // Two response dispatchers so the client is not the saturated resource:
  // with a single dispatcher at this thread count, the measurement is of the
  // client's CPU ceiling (a revived lane re-enters phase-shifted from the
  // others, costing the shared dispatcher an extra probe pass per cycle —
  // a ~5% tax that would mask the recovery this bench is actually gating).
  client_cfg.response_dispatchers = 2;
  FlockRuntime client(cluster, 1, client_cfg);
  client.StartClient();
  Connection* conn = client.Connect(server, lanes);

  RecoveryResult r;
  for (int t = 0; t < threads; ++t) {
    cluster.sim().Spawn(
        EchoWorker(conn, client.CreateThread(t), payload_bytes, &r.ok, &r.fail));
  }
  if (inject) {
    cluster.fault().KillQpAt(sim_span / 4, /*node=*/1, conn->lane(0).qp->qpn());
  }

  uint64_t last = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cluster.sim().RunFor(sim_span / kBuckets);
    const uint64_t now = r.ok + r.fail;
    r.buckets[b] = now - last;
    last = now;
  }

  for (int b = kBuckets - kBuckets / 4; b < kBuckets; ++b) {
    r.window_rpcs += r.buckets[b];
  }
  r.retries = client.client_stats().retries;
  r.failed_rpcs = client.client_stats().failed_rpcs;
  r.spurious = client.client_stats().spurious_responses;
  r.client_lane_failures = client.client_stats().lane_failures;
  r.server_lane_failures = server.server_stats().lane_failures;
  r.lanes.Add(*conn);
  return r;
}

// Sim-ns from the kill until faulted per-bucket throughput is back within 1%
// of the baseline's matching bucket; -1 if it never gets there.
int64_t RecoveryTimeNs(const RecoveryResult& base, const RecoveryResult& faulted,
                       Nanos sim_span) {
  const Nanos bucket_ns = sim_span / kBuckets;
  const Nanos kill_ns = sim_span / 4;
  const int kill_bucket = static_cast<int>(kill_ns / bucket_ns);
  for (int b = kill_bucket; b < kBuckets; ++b) {
    const double target = 0.99 * static_cast<double>(base.buckets[b]);
    if (base.buckets[b] > 0 && static_cast<double>(faulted.buckets[b]) >= target) {
      return static_cast<int64_t>((b + 1) * bucket_ns - kill_ns);
    }
  }
  return -1;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int threads = static_cast<int>(flags.Int("threads", 16));
  const uint32_t lanes = static_cast<uint32_t>(flags.Int("lanes", 8));
  const uint32_t payload = static_cast<uint32_t>(flags.Int("payload", 64));
  const Nanos sim_span = flags.Int("sim-ms", 20) * kMillisecond;
  const Nanos timeout = flags.Int("timeout-us", 200) * kMicrosecond;
  const uint32_t retries = static_cast<uint32_t>(flags.Int("retries", 5));
  const bool reconnect = flags.Int("reconnect", 1) != 0;
  // Reconnect restores the full lane count, so steady state must be within
  // 1% of fault-free; quarantine-only mode runs one lane short (gate 90%).
  const double min_recovery = flags.Double("min-recovery", reconnect ? 0.99 : 0.9);
  JsonDump json(flags.Str("json", "BENCH_fault_recovery.json"), "fault_recovery");

  PrintBanner(reconnect
                  ? "fault_recovery: kill 1 lane mid-run, reconnect via control plane"
                  : "fault_recovery: throughput after killing 1 lane mid-run");
  const RecoveryResult base =
      RunOnce(false, reconnect, threads, lanes, payload, sim_span, timeout, retries);
  const RecoveryResult faulted =
      RunOnce(true, reconnect, threads, lanes, payload, sim_span, timeout, retries);

  const double recovery = base.window_rpcs == 0
                              ? 0.0
                              : static_cast<double>(faulted.window_rpcs) /
                                    static_cast<double>(base.window_rpcs);
  const int64_t recovery_ns = RecoveryTimeNs(base, faulted, sim_span);
  if (flags.Int("buckets", 0) != 0) {
    for (int b = 0; b < kBuckets; ++b) {
      std::printf("bucket %2d: base %6lu faulted %6lu (%.3f)\n", b,
                  static_cast<unsigned long>(base.buckets[b]),
                  static_cast<unsigned long>(faulted.buckets[b]),
                  base.buckets[b] == 0
                      ? 0.0
                      : static_cast<double>(faulted.buckets[b]) /
                            static_cast<double>(base.buckets[b]));
    }
  }
  std::printf("%-10s %12s %10s %10s %10s %10s %10s\n", "run", "window", "ok",
              "fail", "retries", "lane_f", "spurious");
  std::printf("%-10s %12lu %10lu %10lu %10lu %10lu %10lu\n", "baseline",
              static_cast<unsigned long>(base.window_rpcs),
              static_cast<unsigned long>(base.ok),
              static_cast<unsigned long>(base.fail),
              static_cast<unsigned long>(base.retries),
              static_cast<unsigned long>(base.client_lane_failures),
              static_cast<unsigned long>(base.spurious));
  std::printf("%-10s %12lu %10lu %10lu %10lu %10lu %10lu\n", "faulted",
              static_cast<unsigned long>(faulted.window_rpcs),
              static_cast<unsigned long>(faulted.ok),
              static_cast<unsigned long>(faulted.fail),
              static_cast<unsigned long>(faulted.retries),
              static_cast<unsigned long>(faulted.client_lane_failures),
              static_cast<unsigned long>(faulted.spurious));
  std::printf("recovery: %.1f%% of fault-free window throughput\n",
              recovery * 100.0);
  if (recovery_ns >= 0) {
    std::printf("recovery time: %.1f us from kill to within 1%% of baseline\n",
                static_cast<double>(recovery_ns) / 1e3);
  } else {
    std::printf("recovery time: never reached 99%% of baseline\n");
  }
  std::printf("lanes at end: %lu healthy, %lu quarantined, %lu reconnecting, "
              "%lu retired; %lu reconnects\n",
              static_cast<unsigned long>(faulted.lanes.healthy),
              static_cast<unsigned long>(faulted.lanes.quarantined),
              static_cast<unsigned long>(faulted.lanes.reconnecting),
              static_cast<unsigned long>(faulted.lanes.retired),
              static_cast<unsigned long>(faulted.lanes.reconnects));
  std::printf("CSV,fault_recovery,baseline,%lu,%lu,%lu,%lu\n",
              static_cast<unsigned long>(base.window_rpcs),
              static_cast<unsigned long>(base.ok),
              static_cast<unsigned long>(base.fail),
              static_cast<unsigned long>(base.retries));
  std::printf("CSV,fault_recovery,faulted,%lu,%lu,%lu,%lu\n",
              static_cast<unsigned long>(faulted.window_rpcs),
              static_cast<unsigned long>(faulted.ok),
              static_cast<unsigned long>(faulted.fail),
              static_cast<unsigned long>(faulted.retries));

  JsonRow row;
  row.Add("threads", threads)
      .Add("lanes", lanes)
      .Add("payload_bytes", payload)
      .Add("sim_ms", static_cast<int64_t>(sim_span / kMillisecond))
      .Add("timeout_us", static_cast<int64_t>(timeout / kMicrosecond))
      .Add("reconnect", reconnect ? int64_t{1} : int64_t{0})
      .Add("baseline_window_rpcs", base.window_rpcs)
      .Add("faulted_window_rpcs", faulted.window_rpcs)
      .Add("recovery", recovery)
      .Add("recovery_time_ns", recovery_ns)
      .Add("faulted_ok", faulted.ok)
      .Add("faulted_fail", faulted.fail)
      .Add("retries", faulted.retries)
      .Add("failed_rpcs", faulted.failed_rpcs)
      .Add("spurious_responses", faulted.spurious)
      .Add("client_lane_failures", faulted.client_lane_failures)
      .Add("server_lane_failures", faulted.server_lane_failures);
  faulted.lanes.AppendTo(&row, /*include_retired=*/true);
  json.Row(row);

  // Contract checks: the baseline run must be failure-free, the faulted run
  // must detect exactly one client lane failure and recover; with reconnect
  // the lane must additionally come back (no quarantined lanes at the end).
  bool pass = true;
  if (base.fail != 0 || base.retries != 0 || base.client_lane_failures != 0) {
    std::printf("FAIL: baseline run saw failure-path activity\n");
    pass = false;
  }
  if (faulted.client_lane_failures != 1) {
    std::printf("FAIL: expected exactly 1 client lane failure, saw %lu\n",
                static_cast<unsigned long>(faulted.client_lane_failures));
    pass = false;
  }
  if (recovery < min_recovery) {
    std::printf("FAIL: recovery %.3f below threshold %.3f\n", recovery,
                min_recovery);
    pass = false;
  }
  if (reconnect) {
    if (faulted.lanes.reconnects < 1) {
      std::printf("FAIL: reconnect mode saw no lane reconnects\n");
      pass = false;
    }
    if (faulted.lanes.quarantined != 0 || faulted.lanes.reconnecting != 0) {
      std::printf("FAIL: %lu quarantined / %lu reconnecting lanes at end\n",
                  static_cast<unsigned long>(faulted.lanes.quarantined),
                  static_cast<unsigned long>(faulted.lanes.reconnecting));
      pass = false;
    }
    if (recovery_ns < 0) {
      std::printf("FAIL: throughput never returned to within 1%% of baseline\n");
      pass = false;
    }
  }
  std::printf("%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) { return flock::bench::Main(argc, argv); }
