// Fault-recovery bench: kill one of the client's lanes mid-run and measure
// how much steady-state throughput survives.
//
// Two runs share every parameter except the fault. The baseline run is
// fault-free; the faulted run kills one client-side lane QP at 1/4 of the
// simulated span. Both measure completed RPCs inside the final quarter of the
// span — long after the kill — so the ratio ("recovery") isolates the
// steady-state cost of running one lane short plus any residual retry noise,
// not the transient dip while the failure is detected. The bench asserts the
// failure-handling contract: zero aborts, every issued RPC either completes
// ok (possibly via retry) or surfaces ok=false, and recovery >= 90%.
//
// Usage:
//   fault_recovery [--threads=16] [--lanes=8] [--payload=64] [--sim-ms=20]
//                  [--timeout-us=200] [--retries=5] [--min-recovery=0.9]
//                  [--json=BENCH_fault_recovery.json]
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/flock/flock.h"

namespace flock::bench {
namespace {

struct RecoveryResult {
  uint64_t ok = 0;            // RPCs completed successfully over the full run
  uint64_t fail = 0;          // RPCs surfaced as ok=false
  uint64_t window_rpcs = 0;   // completions inside the final-quarter window
  uint64_t retries = 0;
  uint64_t failed_rpcs = 0;
  uint64_t spurious = 0;
  uint64_t client_lane_failures = 0;
  uint64_t server_lane_failures = 0;
};

sim::Proc EchoWorker(Connection* conn, FlockThread* thread, uint32_t payload_bytes,
                     uint64_t* ok, uint64_t* fail) {
  std::vector<uint8_t> payload(payload_bytes, 0x5a);
  std::vector<uint8_t> resp;
  for (;;) {
    if (co_await conn->Call(*thread, 1, payload.data(), payload_bytes, &resp)) {
      (*ok)++;
    } else {
      (*fail)++;
    }
  }
}

RecoveryResult RunOnce(bool inject, int threads, uint32_t lanes,
                       uint32_t payload_bytes, Nanos sim_span, Nanos rpc_timeout,
                       uint32_t max_retries) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2,
                                                .cores_per_node = 34});
  FlockConfig server_cfg;
  FlockRuntime server(cluster, 0, server_cfg);
  server.RegisterHandler(1, [](const uint8_t* req, uint32_t req_len, uint8_t* resp,
                               uint32_t, Nanos* cpu) -> uint32_t {
    *cpu = 50;
    std::memcpy(resp, req, req_len);
    return req_len;
  });
  server.StartServer(4);

  FlockConfig client_cfg;
  client_cfg.rpc_timeout = rpc_timeout;
  client_cfg.max_retries = static_cast<uint16_t>(max_retries);
  FlockRuntime client(cluster, 1, client_cfg);
  client.StartClient();
  Connection* conn = client.Connect(server, lanes);

  RecoveryResult r;
  for (int t = 0; t < threads; ++t) {
    cluster.sim().Spawn(
        EchoWorker(conn, client.CreateThread(t), payload_bytes, &r.ok, &r.fail));
  }
  if (inject) {
    cluster.fault().KillQpAt(sim_span / 4, /*node=*/1, conn->lane(0).qp->qpn());
  }

  cluster.sim().RunFor(sim_span - sim_span / 4);
  const uint64_t before_window = r.ok + r.fail;
  cluster.sim().RunFor(sim_span / 4);

  r.window_rpcs = r.ok + r.fail - before_window;
  r.retries = client.client_stats().retries;
  r.failed_rpcs = client.client_stats().failed_rpcs;
  r.spurious = client.client_stats().spurious_responses;
  r.client_lane_failures = client.client_stats().lane_failures;
  r.server_lane_failures = server.server_stats().lane_failures;
  return r;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int threads = static_cast<int>(flags.Int("threads", 16));
  const uint32_t lanes = static_cast<uint32_t>(flags.Int("lanes", 8));
  const uint32_t payload = static_cast<uint32_t>(flags.Int("payload", 64));
  const Nanos sim_span = flags.Int("sim-ms", 20) * kMillisecond;
  const Nanos timeout = flags.Int("timeout-us", 200) * kMicrosecond;
  const uint32_t retries = static_cast<uint32_t>(flags.Int("retries", 5));
  const double min_recovery = flags.Double("min-recovery", 0.9);
  JsonDump json(flags.Str("json", "BENCH_fault_recovery.json"), "fault_recovery");

  PrintBanner("fault_recovery: throughput after killing 1 lane mid-run");
  const RecoveryResult base =
      RunOnce(false, threads, lanes, payload, sim_span, timeout, retries);
  const RecoveryResult faulted =
      RunOnce(true, threads, lanes, payload, sim_span, timeout, retries);

  const double recovery = base.window_rpcs == 0
                              ? 0.0
                              : static_cast<double>(faulted.window_rpcs) /
                                    static_cast<double>(base.window_rpcs);
  std::printf("%-10s %12s %10s %10s %10s %10s %10s\n", "run", "window", "ok",
              "fail", "retries", "lane_f", "spurious");
  std::printf("%-10s %12lu %10lu %10lu %10lu %10lu %10lu\n", "baseline",
              static_cast<unsigned long>(base.window_rpcs),
              static_cast<unsigned long>(base.ok),
              static_cast<unsigned long>(base.fail),
              static_cast<unsigned long>(base.retries),
              static_cast<unsigned long>(base.client_lane_failures),
              static_cast<unsigned long>(base.spurious));
  std::printf("%-10s %12lu %10lu %10lu %10lu %10lu %10lu\n", "faulted",
              static_cast<unsigned long>(faulted.window_rpcs),
              static_cast<unsigned long>(faulted.ok),
              static_cast<unsigned long>(faulted.fail),
              static_cast<unsigned long>(faulted.retries),
              static_cast<unsigned long>(faulted.client_lane_failures),
              static_cast<unsigned long>(faulted.spurious));
  std::printf("recovery: %.1f%% of fault-free window throughput\n",
              recovery * 100.0);
  std::printf("CSV,fault_recovery,baseline,%lu,%lu,%lu,%lu\n",
              static_cast<unsigned long>(base.window_rpcs),
              static_cast<unsigned long>(base.ok),
              static_cast<unsigned long>(base.fail),
              static_cast<unsigned long>(base.retries));
  std::printf("CSV,fault_recovery,faulted,%lu,%lu,%lu,%lu\n",
              static_cast<unsigned long>(faulted.window_rpcs),
              static_cast<unsigned long>(faulted.ok),
              static_cast<unsigned long>(faulted.fail),
              static_cast<unsigned long>(faulted.retries));

  json.Row({{"threads", threads},
            {"lanes", lanes},
            {"payload_bytes", payload},
            {"sim_ms", static_cast<int64_t>(sim_span / kMillisecond)},
            {"timeout_us", static_cast<int64_t>(timeout / kMicrosecond)},
            {"baseline_window_rpcs", base.window_rpcs},
            {"faulted_window_rpcs", faulted.window_rpcs},
            {"recovery", recovery},
            {"faulted_ok", faulted.ok},
            {"faulted_fail", faulted.fail},
            {"retries", faulted.retries},
            {"failed_rpcs", faulted.failed_rpcs},
            {"spurious_responses", faulted.spurious},
            {"client_lane_failures", faulted.client_lane_failures},
            {"server_lane_failures", faulted.server_lane_failures}});

  // Contract checks: the baseline run must be failure-free, the faulted run
  // must detect exactly one client lane failure and recover.
  bool pass = true;
  if (base.fail != 0 || base.retries != 0 || base.client_lane_failures != 0) {
    std::printf("FAIL: baseline run saw failure-path activity\n");
    pass = false;
  }
  if (faulted.client_lane_failures != 1) {
    std::printf("FAIL: expected exactly 1 client lane failure, saw %lu\n",
                static_cast<unsigned long>(faulted.client_lane_failures));
    pass = false;
  }
  if (recovery < min_recovery) {
    std::printf("FAIL: recovery %.3f below threshold %.3f\n", recovery,
                min_recovery);
    pass = false;
  }
  std::printf("%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) { return flock::bench::Main(argc, argv); }
