// Microbenchmarks for the discrete-event kernel itself.
//
// perf_smoke measures the kernel through the whole Flock stack; this bench
// isolates the primitives the batched-delivery work targets, so a kernel
// regression shows up here before it is diluted by RPC-layer cost:
//
//   * schedule_resume — bare Schedule(0)/dequeue/resume round trips: the cost
//     of one event-queue traversal, the unit everything else is priced in.
//   * notify_fanout_{1,8,64} — Condition::NotifyAll with N parked waiters:
//     exercises wake coalescing (one drain event per timestamp regardless of
//     N; see Simulator::ScheduleWake).
//   * calendar_churn — events spread across the 4096-bucket calendar horizon
//     plus an overflow-heap tail: bucket insert, occupancy scan, refill, and
//     heap merge costs.
//
// Usage:
//   sim_kernel [--iters=2000000] [--repeats=3] [--json=BENCH_sim_kernel.json]
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"

namespace flock::bench {
namespace {

struct KernelResult {
  double wall_s = 0;
  KernelCounters kernel;
  double events_per_s = 0;
};

// ---- schedule/resume round-trip throughput ----

sim::Proc YieldLoop(sim::Simulator& sim, uint64_t iters, uint64_t* done) {
  for (uint64_t i = 0; i < iters; ++i) {
    co_await sim::Delay(sim, 0);
  }
  ++(*done);
}

KernelResult RunScheduleResume(uint64_t iters) {
  sim::Simulator sim;
  uint64_t done = 0;
  sim.Spawn(YieldLoop(sim, iters, &done));
  const WallTimer timer;
  sim.Run();
  FLOCK_CHECK_EQ(done, 1u);
  KernelResult r;
  r.wall_s = timer.Seconds();
  r.kernel = KernelCounters::Capture(sim);
  r.events_per_s = static_cast<double>(r.kernel.events) / r.wall_s;
  return r;
}

// ---- NotifyAll fan-out ----

sim::Proc FanoutWaiter(sim::Condition& cond, const bool& stop, uint64_t* wakes) {
  while (!stop) {
    co_await cond.Wait();
    ++(*wakes);
  }
}

sim::Proc FanoutNotifier(sim::Simulator& sim, sim::Condition& cond, bool& stop,
                         uint64_t rounds) {
  for (uint64_t i = 0; i < rounds; ++i) {
    cond.NotifyAll();
    // Advance one tick so every waiter re-parks before the next notify.
    co_await sim::Delay(sim, 1);
  }
  stop = true;
  cond.NotifyAll();
}

KernelResult RunNotifyFanout(int waiters, uint64_t rounds) {
  sim::Simulator sim;
  sim::Condition cond(sim);
  bool stop = false;
  uint64_t wakes = 0;
  for (int i = 0; i < waiters; ++i) {
    sim.Spawn(FanoutWaiter(cond, stop, &wakes));
  }
  sim.Spawn(FanoutNotifier(sim, cond, stop, rounds));
  const WallTimer timer;
  sim.Run();
  KernelResult r;
  r.wall_s = timer.Seconds();
  r.kernel = KernelCounters::Capture(sim);
  // Every waiter wakes once per notify round (delivered via wake batches).
  FLOCK_CHECK_GE(wakes, rounds * static_cast<uint64_t>(waiters));
  r.events_per_s = static_cast<double>(wakes) / r.wall_s;  // wakes/s here
  return r;
}

// ---- calendar churn ----

sim::Proc ChurnLoop(sim::Simulator& sim, uint64_t iters, uint64_t* done) {
  // Delays cycle through the calendar horizon and spill into the overflow
  // heap (delay > 4096), exercising bucket insert + occupancy scan + refill
  // + heap merge rather than the now-FIFO fast path.
  static constexpr Nanos kDelays[] = {1, 7, 63, 511, 4095, 9001};
  for (uint64_t i = 0; i < iters; ++i) {
    co_await sim::Delay(sim, kDelays[i % (sizeof(kDelays) / sizeof(kDelays[0]))]);
  }
  ++(*done);
}

KernelResult RunCalendarChurn(uint64_t iters, int procs) {
  sim::Simulator sim;
  uint64_t done = 0;
  for (int p = 0; p < procs; ++p) {
    sim.Spawn(ChurnLoop(sim, iters, &done));
  }
  const WallTimer timer;
  sim.Run();
  FLOCK_CHECK_EQ(done, static_cast<uint64_t>(procs));
  KernelResult r;
  r.wall_s = timer.Seconds();
  r.kernel = KernelCounters::Capture(sim);
  r.events_per_s = static_cast<double>(r.kernel.events) / r.wall_s;
  return r;
}

// ---- cross-shard hop grid (sharded-kernel scaling sweep) ----

// A ring of nodes, several procs per node, each alternating same-node delays
// with cross-node hops of exactly the lookahead: the worst case for the
// window loop (every window ends in a mailbox drain). Swept over shard
// counts; the event count must not change (the trace is shard-invariant),
// only the wall clock may.
sim::Proc HopWorker(sim::Simulator& sim, int home, int peer, Nanos hop,
                    uint64_t rounds, uint64_t* done) {
  for (uint64_t r = 0; r < rounds; ++r) {
    co_await sim::Delay(sim, static_cast<Nanos>(r % 5));
    co_await sim::HopToNode(sim, peer, hop);
    co_await sim::HopToNode(sim, home, hop);
  }
  ++(*done);
}

KernelResult RunHopGrid(int nodes, int shards, int workers, uint64_t rounds) {
  constexpr Nanos kHop = 450;  // the fabric's min cross-node delay, in spirit
  sim::Simulator sim;
  std::vector<int> node_shard(static_cast<size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    node_shard[static_cast<size_t>(n)] = n % shards;
  }
  sim.ConfigureSharding(shards, node_shard, kHop, workers);
  // Per-node completion counters: a HopWorker finishes on its home node, so
  // each slot is single-writer under sharding (shared counters would race).
  std::vector<uint64_t> done(static_cast<size_t>(nodes), 0);
  for (int n = 0; n < nodes; ++n) {
    for (int k = 0; k < 4; ++k) {
      sim.Spawn(
          HopWorker(sim, n, (n + 1 + k) % nodes, kHop, rounds,
                    &done[static_cast<size_t>(n)]),
          n);
    }
  }
  const WallTimer timer;
  sim.Run();
  uint64_t total_done = 0;
  for (const uint64_t d : done) {
    total_done += d;
  }
  FLOCK_CHECK_EQ(total_done, static_cast<uint64_t>(nodes) * 4);
  KernelResult r;
  r.wall_s = timer.Seconds();
  r.kernel = KernelCounters::Capture(sim);
  r.events_per_s = static_cast<double>(r.kernel.events) / r.wall_s;
  return r;
}

void Report(JsonDump& json, const char* name, const KernelResult& best,
            const char* rate_unit) {
  std::printf("%-18s %14.0f %s  (%lu events, %lu resumes, %lu coalesced, "
              "%.1f ms)\n",
              name, best.events_per_s, rate_unit,
              static_cast<unsigned long>(best.kernel.events),
              static_cast<unsigned long>(best.kernel.resumes),
              static_cast<unsigned long>(best.kernel.coalesced_wakes),
              best.wall_s * 1e3);
  json.Row({{"case", name},
            {"rate", best.events_per_s},
            {"rate_unit", rate_unit},
            {"events", best.kernel.events},
            {"resumes", best.kernel.resumes},
            {"coalesced_wakes", best.kernel.coalesced_wakes},
            {"wall_s", best.wall_s}});
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t iters = static_cast<uint64_t>(flags.Int("iters", 2000000));
  const int repeats = static_cast<int>(flags.Int("repeats", 3));
  JsonDump json(flags.Str("json", "BENCH_sim_kernel.json"), "sim_kernel");

  PrintBanner("sim_kernel: event-kernel primitive throughput");
  const auto kRate = [](const KernelResult& r) { return r.events_per_s; };

  Report(json, "schedule_resume", BestOf(repeats, [&] { return RunScheduleResume(iters); }, kRate),
         "events/s");
  const uint64_t rounds = iters / 64;
  Report(json, "notify_fanout_1", BestOf(repeats, [&] { return RunNotifyFanout(1, rounds * 8); }, kRate),
         "wakes/s");
  Report(json, "notify_fanout_8", BestOf(repeats, [&] { return RunNotifyFanout(8, rounds); }, kRate),
         "wakes/s");
  Report(json, "notify_fanout_64", BestOf(repeats, [&] { return RunNotifyFanout(64, rounds / 8); }, kRate),
         "wakes/s");
  Report(json, "calendar_churn", BestOf(repeats, [&] { return RunCalendarChurn(iters / 8, 8); }, kRate),
         "events/s");

  // Shard-scaling sweep: the same hop grid on 1..--shards shards. The event
  // count is asserted shard-invariant; the per-shard rates land in the JSON
  // so the scaling curve rides the shared --json pipeline. --workers forces
  // the pool size (CI's TSan job uses it to guarantee real threads).
  const int max_shards = static_cast<int>(flags.Int("shards", 8));
  const int workers = static_cast<int>(flags.Int("workers", 0));
  const int grid_nodes = static_cast<int>(flags.Int("hop-nodes", 16));
  const uint64_t hop_rounds = iters / 200;
  uint64_t base_events = 0;
  for (int shards = 1; shards <= max_shards; shards *= 2) {
    const KernelResult best = BestOf(
        repeats,
        [&] { return RunHopGrid(grid_nodes, shards, workers, hop_rounds); },
        kRate);
    if (shards == 1) {
      base_events = best.kernel.events;
    } else {
      FLOCK_CHECK_EQ(best.kernel.events, base_events)
          << "hop_grid trace changed at " << shards << " shards";
    }
    char name[32];
    std::snprintf(name, sizeof(name), "hop_grid_s%d", shards);
    Report(json, name, best, "events/s");
  }
  return 0;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) { return flock::bench::Main(argc, argv); }
