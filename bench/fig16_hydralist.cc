// Figures 16, 17, 18 — HydraList served over Flock vs eRPC (§8.6).
//
// A single-node ordered index; 22 client nodes issue 90% get and 10%
// scan(64) with {1,4,8} outstanding requests per thread. Paper result:
// comparable at low thread counts; at 32 threads Flock is ~1.4x with lower
// median and p99 for both gets and scans.
//
// The index is scaled down from 32M to 4M keys (lookup cost is O(log n); the
// two-hop difference is noted in EXPERIMENTS.md). One shared read-only index
// serves every configuration.
//
// Usage: fig16_hydralist [--measure_ms=2] [--warmup_ms=1] [--keys=4000000]
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "bench/rpc_bench_lib.h"
#include "src/baselines/udrpc.h"
#include "src/common/histogram.h"
#include "src/flock/flock.h"
#include "src/index/hydralist.h"
#include "src/index/remote_mirror.h"

namespace flock::bench {
namespace {

constexpr uint16_t kGetRpc = 1;
constexpr uint16_t kScanRpc = 2;
constexpr uint32_t kScanRange = 64;

struct GetReq {
  uint64_t key;
};
struct ScanReq {
  uint64_t start;
  uint32_t count;
};

struct IndexShared {
  bool measuring = false;
  uint64_t gets = 0;
  uint64_t scans = 0;
  Histogram get_latency;
  Histogram scan_latency;
};

RpcHandler MakeGetHandler(const index::HydraList* list) {
  return [list](const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                Nanos* cpu) -> uint32_t {
    GetReq get;
    std::memcpy(&get, req, sizeof(get));
    uint64_t value = 0;
    *cpu = 0;
    list->Get(get.key, &value, cpu);
    std::memcpy(resp, &value, 8);
    return 8;
  };
}

RpcHandler MakeScanHandler(const index::HydraList* list) {
  return [list](const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                Nanos* cpu) -> uint32_t {
    ScanReq scan;
    std::memcpy(&scan, req, sizeof(scan));
    uint64_t digest = 0;
    *cpu = 0;
    const uint64_t found = list->Scan(scan.start, scan.count, &digest, cpu);
    std::memcpy(resp, &found, 8);  // the paper's scan replies with the count
    return 8;
  };
}

// 90% get / 10% scan over uniform keys. Returns true if the op was a get.
bool NextOp(Rng& rng, uint64_t keys, uint16_t* rpc, uint8_t* buf, uint32_t* len) {
  if (rng.NextBelow(10) != 0) {
    GetReq get{rng.NextBelow(keys)};
    std::memcpy(buf, &get, sizeof(get));
    *len = sizeof(get);
    *rpc = kGetRpc;
    return true;
  }
  ScanReq scan{rng.NextBelow(keys), kScanRange};
  std::memcpy(buf, &scan, sizeof(scan));
  *len = sizeof(scan);
  *rpc = kScanRpc;
  return false;
}

sim::Proc FlockIndexWorker(verbs::Cluster* cluster, Connection* conn,
                           FlockThread* thread, uint64_t keys, int outstanding,
                           uint64_t seed, IndexShared* shared) {
  Rng rng(seed);
  std::vector<PendingRpc*> batch(static_cast<size_t>(outstanding));
  std::vector<bool> is_get(static_cast<size_t>(outstanding));
  uint8_t buf[16];
  for (;;) {
    for (int i = 0; i < outstanding; ++i) {
      uint16_t rpc = 0;
      uint32_t len = 0;
      is_get[static_cast<size_t>(i)] = NextOp(rng, keys, &rpc, buf, &len);
      batch[static_cast<size_t>(i)] = co_await conn->SendRpc(*thread, rpc, buf, len);
    }
    for (int i = 0; i < outstanding; ++i) {
      PendingRpc* rpc = batch[static_cast<size_t>(i)];
      co_await conn->AwaitResponse(*thread, rpc);
      if (shared->measuring) {
        const Nanos lat = rpc->completed_at - rpc->submitted_at;
        if (is_get[static_cast<size_t>(i)]) {
          shared->gets += 1;
          shared->get_latency.Record(lat);
        } else {
          shared->scans += 1;
          shared->scan_latency.Record(lat);
        }
      }
      conn->FreeRpc(rpc);
    }
  }
}

sim::Proc UdIndexWorker(verbs::Cluster* cluster, baselines::UdRpcClient::Thread* thread,
                        baselines::UdEndpoint server, uint64_t keys, int outstanding,
                        uint64_t seed, IndexShared* shared) {
  Rng rng(seed);
  std::vector<baselines::UdRpcClient::Pending*> batch(
      static_cast<size_t>(outstanding));
  std::vector<bool> is_get(static_cast<size_t>(outstanding));
  uint8_t buf[16];
  for (;;) {
    for (int i = 0; i < outstanding; ++i) {
      uint16_t rpc = 0;
      uint32_t len = 0;
      is_get[static_cast<size_t>(i)] = NextOp(rng, keys, &rpc, buf, &len);
      batch[static_cast<size_t>(i)] = co_await thread->Send(server, rpc, buf, len);
    }
    for (int i = 0; i < outstanding; ++i) {
      auto* pending = batch[static_cast<size_t>(i)];
      const bool ok = co_await thread->Await(pending, 2 * kMillisecond);
      if (shared->measuring && ok) {
        const Nanos lat = pending->completed_at - pending->submitted_at;
        if (is_get[static_cast<size_t>(i)]) {
          shared->gets += 1;
          shared->get_latency.Record(lat);
        } else {
          shared->scans += 1;
          shared->scan_latency.Record(lat);
        }
      }
      delete pending;
    }
  }
}

struct IndexResult {
  double mops = 0;
  int64_t get_p50 = 0, get_p99 = 0;
  int64_t scan_p50 = 0, scan_p99 = 0;
};

IndexResult RunFlockIndex(const index::HydraList* list, uint64_t keys, int threads,
                          int outstanding, Nanos warmup, Nanos measure) {
  constexpr int kClients = 22;
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 1 + kClients, .cores_per_node = 32});
  FlockConfig config;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(kGetRpc, MakeGetHandler(list));
  server.RegisterHandler(kScanRpc, MakeScanHandler(list));
  server.StartServer(31);

  IndexShared shared;
  FlockConfig client_config;
  client_config.response_dispatchers = threads >= 32 ? 2 : 1;
  std::vector<std::unique_ptr<FlockRuntime>> clients;
  uint64_t seed = 0x94d049bb133111ebULL;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<FlockRuntime>(cluster, 1 + c, client_config));
    clients.back()->StartClient();
    Connection* conn =
        clients.back()->Connect(server, static_cast<uint32_t>(threads));
    for (int t = 0; t < threads; ++t) {
      cluster.sim().Spawn(FlockIndexWorker(&cluster, conn,
                                           clients.back()->CreateThread(t % 30), keys,
                                           outstanding, SplitMix64(seed), &shared));
    }
  }
  cluster.sim().RunFor(warmup);
  shared.measuring = true;
  cluster.sim().RunFor(measure);
  shared.measuring = false;

  IndexResult result;
  result.mops = static_cast<double>(shared.gets + shared.scans) /
                (static_cast<double>(measure) / 1e9) / 1e6;
  result.get_p50 = shared.get_latency.Median();
  result.get_p99 = shared.get_latency.P99();
  result.scan_p50 = shared.scan_latency.Median();
  result.scan_p99 = shared.scan_latency.P99();
  return result;
}

// One-sided gets against the published mirror (scans stay RPC — they need
// the server-side index walk). Gets that come back stale/absent fall back to
// the authoritative RPC; the recorded latency covers the whole composite.
sim::Proc OneSidedIndexWorker(verbs::Cluster* cluster, Connection* conn,
                              FlockThread* thread, index::MirrorReader* reader,
                              uint64_t keys, uint64_t seed, IndexShared* shared) {
  Rng rng(seed);
  uint8_t buf[16];
  LatencyRecorder get_lat(cluster->sim(), &shared->get_latency);
  for (;;) {
    uint16_t rpc = 0;
    uint32_t len = 0;
    const bool is_get = NextOp(rng, keys, &rpc, buf, &len);
    if (is_get) {
      GetReq get;
      std::memcpy(&get, buf, sizeof(get));
      const Nanos start = get_lat.Start();
      uint64_t value = 0;
      const index::MirrorReader::Outcome out =
          co_await reader->Get(*thread, get.key, &value);
      if (out != index::MirrorReader::Outcome::kOk) {
        PendingRpc* pending = co_await conn->SendRpc(*thread, kGetRpc, buf, len);
        co_await conn->AwaitResponse(*thread, pending);
        conn->FreeRpc(pending);
      }
      if (shared->measuring) {
        shared->gets += 1;
        get_lat.Record(start);
      }
    } else {
      PendingRpc* pending = co_await conn->SendRpc(*thread, rpc, buf, len);
      co_await conn->AwaitResponse(*thread, pending);
      if (shared->measuring) {
        shared->scans += 1;
        shared->scan_latency.Record(pending->completed_at - pending->submitted_at);
      }
      conn->FreeRpc(pending);
    }
  }
}

IndexResult RunFlockIndexOneSided(const index::HydraList* list, uint64_t keys,
                                  int threads, Nanos warmup, Nanos measure) {
  constexpr int kClients = 22;
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 1 + kClients, .cores_per_node = 32});
  FlockConfig config;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(kGetRpc, MakeGetHandler(list));
  server.RegisterHandler(kScanRpc, MakeScanHandler(list));
  server.StartServer(31);

  // Publish the read-only index into registered memory once; the directory
  // is handed to every reader at setup (standing in for one RefreshDirectory
  // per client, outside the measured window either way).
  index::HydraMirror mirror(cluster.mem(0), list->data_nodes() + 8);
  mirror.Publish(*list);
  const auto directory = mirror.DirectorySnapshot();

  IndexShared shared;
  FlockConfig client_config;
  client_config.response_dispatchers = threads >= 32 ? 2 : 1;
  std::vector<std::unique_ptr<FlockRuntime>> clients;
  std::vector<std::unique_ptr<index::MirrorReader>> readers;
  uint64_t seed = 0x2545f4914f6cdd1dULL;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<FlockRuntime>(cluster, 1 + c, client_config));
    clients.back()->StartClient();
    Connection* conn =
        clients.back()->Connect(server, static_cast<uint32_t>(threads));
    const RemoteMr dir_mr = conn->AttachMreg(mirror.dir_addr(), mirror.dir_bytes());
    const RemoteMr blocks_mr =
        conn->AttachMreg(mirror.blocks_addr(), mirror.blocks_bytes());
    for (int t = 0; t < threads; ++t) {
      readers.push_back(std::make_unique<index::MirrorReader>(
          *conn, cluster.mem(1 + c), mirror.dir_addr(), dir_mr, blocks_mr,
          mirror.max_blocks()));
      readers.back()->AdoptDirectory(directory);
      cluster.sim().Spawn(OneSidedIndexWorker(
          &cluster, conn, clients.back()->CreateThread(t % 30), readers.back().get(),
          keys, SplitMix64(seed), &shared));
    }
  }
  cluster.sim().RunFor(warmup);
  shared.measuring = true;
  cluster.sim().RunFor(measure);
  shared.measuring = false;

  IndexResult result;
  result.mops = static_cast<double>(shared.gets + shared.scans) /
                (static_cast<double>(measure) / 1e9) / 1e6;
  result.get_p50 = shared.get_latency.Median();
  result.get_p99 = shared.get_latency.P99();
  result.scan_p50 = shared.scan_latency.Median();
  result.scan_p99 = shared.scan_latency.P99();
  return result;
}

IndexResult RunUdIndex(const index::HydraList* list, uint64_t keys, int threads,
                       int outstanding, Nanos warmup, Nanos measure) {
  constexpr int kClients = 22;
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 1 + kClients, .cores_per_node = 32});
  baselines::UdRpcServer server(
      cluster, 0,
      baselines::UdRpcServer::Config{.worker_threads = 32, .recv_pool = 2048});
  server.RegisterHandler(kGetRpc, MakeGetHandler(list));
  server.RegisterHandler(kScanRpc, MakeScanHandler(list));
  server.Start();

  IndexShared shared;
  std::vector<std::unique_ptr<baselines::UdRpcClient>> clients;
  uint64_t seed = 0xbf58476d1ce4e5b9ULL;
  int global_thread = 0;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<baselines::UdRpcClient>(cluster, 1 + c));
    for (int t = 0; t < threads; ++t) {
      auto* thread = clients.back()->CreateThread(
          t % 32, static_cast<uint32_t>(outstanding) + 8);
      cluster.sim().Spawn(
          UdIndexWorker(&cluster, thread, server.endpoint(global_thread++ % 32), keys,
                        outstanding, SplitMix64(seed), &shared));
    }
  }
  cluster.sim().RunFor(warmup);
  shared.measuring = true;
  cluster.sim().RunFor(measure);
  shared.measuring = false;

  IndexResult result;
  result.mops = static_cast<double>(shared.gets + shared.scans) /
                (static_cast<double>(measure) / 1e9) / 1e6;
  result.get_p50 = shared.get_latency.Median();
  result.get_p99 = shared.get_latency.P99();
  result.scan_p50 = shared.scan_latency.Median();
  result.scan_p99 = shared.scan_latency.P99();
  return result;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "fig16_hydralist");
  const uint64_t keys = static_cast<uint64_t>(flags.Int("keys", 4000000));
  const flock::Nanos warmup = flags.Int("warmup_ms", 1) * flock::kMillisecond;
  const flock::Nanos measure = flags.Int("measure_ms", 2) * flock::kMillisecond;

  // One shared read-only index (the paper populates once, then runs get/scan).
  std::printf("populating HydraList with %lu keys...\n",
              static_cast<unsigned long>(keys));
  auto list = std::make_unique<flock::index::HydraList>();
  flock::Nanos ignored = 0;
  for (uint64_t k = 0; k < keys; ++k) {
    list->Insert(k, k * 3 + 1, &ignored);
    if ((k & 0xfff) == 0) {
      // Keep the search layer fresh during the bulk load: with it stale, an
      // ascending load degenerates to an O(n^2) walk of the data list.
      list->DrainSearchUpdates(SIZE_MAX);
    }
  }
  list->DrainSearchUpdates(SIZE_MAX);

  for (int outstanding : {1, 4, 8}) {
    std::printf(
        "\n==== Figs 16/17/18 (outstanding = %d): HydraList 90%% get / 10%% scan ====\n",
        outstanding);
    std::printf("%8s | %10s %8s %8s %9s %9s | %10s %8s %8s %9s %9s\n", "thr/cli",
                "FLock Mops", "getP50", "getP99", "scanP50", "scanP99", "eRPC Mops",
                "getP50", "getP99", "scanP50", "scanP99");
    for (int threads : {1, 2, 4, 8, 16, 32}) {
      const IndexResult fl =
          RunFlockIndex(list.get(), keys, threads, outstanding, warmup, measure);
      const IndexResult ud =
          RunUdIndex(list.get(), keys, threads, outstanding, warmup, measure);
      std::printf(
          "%8d | %10.1f %8.1f %8.1f %9.1f %9.1f | %10.1f %8.1f %8.1f %9.1f %9.1f\n",
          threads, fl.mops, fl.get_p50 / 1e3, fl.get_p99 / 1e3, fl.scan_p50 / 1e3,
          fl.scan_p99 / 1e3, ud.mops, ud.get_p50 / 1e3, ud.get_p99 / 1e3,
          ud.scan_p50 / 1e3, ud.scan_p99 / 1e3);
      std::printf("CSV,fig161718,%d,%d,flock,%.2f,%ld,%ld,%ld,%ld\n", outstanding,
                  threads, fl.mops, static_cast<long>(fl.get_p50),
                  static_cast<long>(fl.get_p99), static_cast<long>(fl.scan_p50),
                  static_cast<long>(fl.scan_p99));
      std::printf("CSV,fig161718,%d,%d,erpc,%.2f,%ld,%ld,%ld,%ld\n", outstanding,
                  threads, ud.mops, static_cast<long>(ud.get_p50),
                  static_cast<long>(ud.get_p99), static_cast<long>(ud.scan_p50),
                  static_cast<long>(ud.scan_p99));
      json.Row({{"outstanding", outstanding}, {"threads", threads},
                {"system", "flock"}, {"mops", fl.mops}, {"get_p50_ns", fl.get_p50},
                {"get_p99_ns", fl.get_p99}, {"scan_p50_ns", fl.scan_p50},
                {"scan_p99_ns", fl.scan_p99}});
      json.Row({{"outstanding", outstanding}, {"threads", threads},
                {"system", "erpc"}, {"mops", ud.mops}, {"get_p50_ns", ud.get_p50},
                {"get_p99_ns", ud.get_p99}, {"scan_p50_ns", ud.scan_p50},
                {"scan_p99_ns", ud.scan_p99}});
      // One-sided mirror gets (fl_read, no server CPU); scans stay RPC. The
      // mirror path issues ops synchronously, so it only gets outstanding=1
      // rows.
      if (outstanding == 1) {
        const IndexResult os =
            RunFlockIndexOneSided(list.get(), keys, threads, warmup, measure);
        std::printf(
            "%8d | %10.1f %8.1f %8.1f %9.1f %9.1f | (one-sided mirror gets)\n",
            threads, os.mops, os.get_p50 / 1e3, os.get_p99 / 1e3,
            os.scan_p50 / 1e3, os.scan_p99 / 1e3);
        std::printf("CSV,fig161718,%d,%d,flock_onesided,%.2f,%ld,%ld,%ld,%ld\n",
                    outstanding, threads, os.mops, static_cast<long>(os.get_p50),
                    static_cast<long>(os.get_p99), static_cast<long>(os.scan_p50),
                    static_cast<long>(os.scan_p99));
        json.Row({{"outstanding", outstanding}, {"threads", threads},
                  {"system", "flock_onesided"}, {"mops", os.mops},
                  {"get_p50_ns", os.get_p50}, {"get_p99_ns", os.get_p99},
                  {"scan_p50_ns", os.scan_p50}, {"scan_p99_ns", os.scan_p99}});
      }
      std::fflush(stdout);
    }
  }
  return 0;
}
