// Figure 14 — TATP over FlockTX vs the FaSST-like baseline (§8.5.2).
//
// Read-intensive OLTP (80% reads); 20 clients, 3 servers, 3-way replication,
// 19 submitting coroutines per thread. Paper result: FaSST saturates at ~4
// threads with sharply rising latency; FlockTX keeps scaling (≈1.9x / 2.4x at
// 8 / 16 threads) and FaSST suffers packet loss at high thread counts.
//
// Subscribers are scaled to 1M total (paper: 1M/server). KV
// access cost in the simulator is size-independent, but OCC *contention* is
// not — the default keeps hot-key conflict rates low, as in the paper.
//
// Usage: fig14_tatp [--measure_ms=3] [--warmup_ms=2] [--subscribers=30000]
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/txn_bench_lib.h"
#include "src/workloads/tatp.h"

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "fig14_tatp");
  const uint64_t subscribers =
      static_cast<uint64_t>(flags.Int("subscribers", 1000000));
  flock::workloads::Tatp tatp(subscribers);

  PrintBanner("Figure 14: TATP, 20 clients + 3 servers, 3-way replication");
  std::printf("%8s | %11s %9s %9s %7s | %11s %9s %9s %7s\n", "thr/cli",
              "FLockTX Mtps", "p50(us)", "p99(us)", "abrt%", "FaSST Mtps",
              "p50(us)", "p99(us)", "lost");
  for (int threads : {1, 2, 4, 8, 16}) {
    TxnBenchConfig config;
    config.threads_per_client = threads;
    config.keys_per_partition = subscribers * 4;
    config.warmup = flags.Int("warmup_ms", 2) * flock::kMillisecond;
    config.measure = flags.Int("measure_ms", 3) * flock::kMillisecond;
    config.populate = [&](const std::function<void(uint64_t)>& insert) {
      tatp.Populate(insert);
    };
    config.next = [&tatp](flock::Rng& rng) { return tatp.Next(rng); };

    std::fprintf(stderr, "[fig14] threads=%d flocktx...\n", threads);
    config.system = TxnSystem::kFlockTx;
    const TxnBenchResult fl = RunTxnBench(config);
    std::fprintf(stderr, "[fig14] threads=%d flocktx-lock...\n", threads);
    config.mode = flock::txn::TxMode::kLockOneSided;
    const TxnBenchResult lk = RunTxnBench(config);
    config.mode = flock::txn::TxMode::kOcc;
    std::fprintf(stderr, "[fig14] threads=%d fasst...\n", threads);
    config.system = TxnSystem::kFasst;
    const TxnBenchResult ud = RunTxnBench(config);

    const double fl_abort =
        fl.committed == 0
            ? 0.0
            : 100.0 * static_cast<double>(fl.aborts) /
                  static_cast<double>(fl.aborts + fl.committed);
    std::printf("%8d | %11.2f %9.1f %9.1f %6.1f%% | %11.2f %9.1f %9.1f %7lu\n",
                threads, fl.mtps, fl.p50_ns / 1e3, fl.p99_ns / 1e3, fl_abort,
                ud.mtps, ud.p50_ns / 1e3, ud.p99_ns / 1e3,
                static_cast<unsigned long>(ud.failed));
    std::printf("CSV,fig14,%d,flocktx,%.3f,%ld,%ld,%lu\n", threads, fl.mtps,
                static_cast<long>(fl.p50_ns), static_cast<long>(fl.p99_ns),
                static_cast<unsigned long>(fl.aborts));
    std::printf("CSV,fig14,%d,flocktx_lock,%.3f,%ld,%ld,%lu\n", threads, lk.mtps,
                static_cast<long>(lk.p50_ns), static_cast<long>(lk.p99_ns),
                static_cast<unsigned long>(lk.aborts));
    std::printf("CSV,fig14,%d,fasst,%.3f,%ld,%ld,%lu\n", threads, ud.mtps,
                static_cast<long>(ud.p50_ns), static_cast<long>(ud.p99_ns),
                static_cast<unsigned long>(ud.failed));
    json.Row({{"threads", threads}, {"system", "flocktx"}, {"mtps", fl.mtps},
              {"p50_ns", fl.p50_ns}, {"p99_ns", fl.p99_ns}, {"aborts", fl.aborts}});
    json.Row({{"threads", threads}, {"system", "flocktx_lock"}, {"mtps", lk.mtps},
              {"p50_ns", lk.p50_ns}, {"p99_ns", lk.p99_ns}, {"aborts", lk.aborts}});
    json.Row({{"threads", threads}, {"system", "fasst"}, {"mtps", ud.mtps},
              {"p50_ns", ud.p50_ns}, {"p99_ns", ud.p99_ns}, {"failed", ud.failed}});
    std::fflush(stdout);
  }
  return 0;
}
