// RPC vs one-sided crossover — where does fl_read beat the RPC data plane?
//
// One server holds a KV store of [version | value] records; clients run a
// read/write mix against it over two data planes:
//
//   rpc       — every op is an RPC (kGet / kPut), the server CPU executes it.
//   onesided  — point reads go through the OneSidedReader (fl_read + seqlock
//               validation, zero server CPU); locked/contended/unknown keys
//               fall back to the RPC, which also feeds the address cache.
//               Writes stay RPCs (the server serializes installs either way).
//
// The sweep is payload size {8..4096} x read ratio {50, 90, 100}%: one-sided
// wins on small read-mostly workloads (no server CPU, but two reads on the
// wire); RPCs win once payloads amortize the round trip or writes dominate.
// The bench reports the measured crossover payload per read ratio, and the
// 64B/100%-read speedup that scripts/check_perf.py gates on.
//
// Usage: onesided_crossover [--measure_ms=2] [--warmup_ms=1] [--keys=4096]
//                           [--clients=8] [--threads=8] [--server_cores=2]
//                           [--json=<path>]
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/flock/flock.h"
#include "src/kv/kvstore.h"
#include "src/kv/remote_kv.h"

namespace flock::bench {
namespace {

constexpr uint16_t kGetRpc = 1;
constexpr uint16_t kPutRpc = 2;

// kGet response layout: [ok u64][version u64][version_addr u64][value bytes].
// version_addr is the address-learning channel for the one-sided path.
constexpr uint32_t kGetRespHeader = 24;

struct Shared {
  bool measuring = false;
  uint64_t ops = 0;
  uint64_t rpc_fallbacks = 0;  // one-sided reads that ended up as RPCs
  Histogram latency;
};

RpcHandler MakeGetHandler(kv::KvStore* store) {
  return [store](const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                 Nanos* cpu) -> uint32_t {
    uint64_t key = 0;
    std::memcpy(&key, req, 8);
    uint64_t version = 0, addr = 0;
    const uint64_t ok =
        store->Get(key, resp + kGetRespHeader, &version, &addr) ? 1 : 0;
    std::memcpy(resp, &ok, 8);
    std::memcpy(resp + 8, &version, 8);
    std::memcpy(resp + 16, &addr, 8);
    *cpu = kv::KvStore::kAccessCost;
    return kGetRespHeader + (ok != 0 ? store->value_size() : 0);
  };
}

RpcHandler MakePutHandler(kv::KvStore* store) {
  return [store](const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                 Nanos* cpu) -> uint32_t {
    uint64_t key = 0;
    std::memcpy(&key, req, 8);
    // Handlers are synchronous on a dispatcher core, so lock+install+unlock
    // here is atomic with respect to other handlers; a false TryLock means a
    // concurrent coordinator (e.g. FlockTX) holds the record — report it.
    const uint64_t ok = store->TryLock(key, nullptr, nullptr) &&
                                store->UpdateAndUnlock(key, req + 8)
                            ? 1
                            : 0;
    std::memcpy(resp, &ok, 8);
    *cpu = 2 * kv::KvStore::kAccessCost;
    return 8;
  };
}

// Shared by both paths: issue ops synchronously (outstanding = 1, the
// latency-honest configuration for a crossover comparison). `reader` is null
// on the pure-RPC path. `span_mrs` lets the one-sided path file addresses
// learned from kGet responses under the covering MR.
sim::Proc Worker(verbs::Cluster* cluster, Connection* conn, FlockThread* thread,
                 kv::OneSidedReader* reader, const std::vector<RemoteMr>* span_mrs,
                 uint64_t keys, uint32_t payload, int read_pct, uint64_t seed,
                 Shared* shared) {
  Rng rng(seed);
  std::vector<uint8_t> put_buf(8 + payload);
  std::vector<uint8_t> value(payload);
  LatencyRecorder lat(cluster->sim(), &shared->latency);
  for (;;) {
    const uint64_t key = rng.NextBelow(keys);
    const bool is_read = rng.NextBelow(100) < static_cast<uint64_t>(read_pct);
    const Nanos start = lat.Start();
    if (is_read) {
      bool need_rpc = true;
      if (reader != nullptr) {
        const auto out =
            co_await reader->Get(*thread, key, value.data(), nullptr);
        need_rpc = out != kv::OneSidedReader::Outcome::kOk;
        if (need_rpc && shared->measuring) {
          shared->rpc_fallbacks += 1;
        }
      }
      if (need_rpc) {
        PendingRpc* rpc = co_await conn->SendRpc(*thread, kGetRpc,
                                                 reinterpret_cast<const uint8_t*>(&key), 8);
        co_await conn->AwaitResponse(*thread, rpc);
        if (reader != nullptr && rpc->ok &&
            rpc->response.size() >= kGetRespHeader) {
          uint64_t addr = 0;
          std::memcpy(&addr, rpc->response.data() + 16, 8);
          if (addr != 0 && !reader->KnowsAddr(key)) {
            for (const RemoteMr& mr : *span_mrs) {
              if (addr >= mr.addr && addr + 8 + payload <= mr.addr + mr.length) {
                reader->LearnAddr(key, addr, mr);
                break;
              }
            }
          }
        }
        conn->FreeRpc(rpc);
      }
    } else {
      std::memcpy(put_buf.data(), &key, 8);
      for (uint32_t i = 0; i < payload; ++i) {
        put_buf[8 + i] = static_cast<uint8_t>(key + i);
      }
      PendingRpc* rpc = co_await conn->SendRpc(
          *thread, kPutRpc, put_buf.data(), static_cast<uint32_t>(put_buf.size()));
      co_await conn->AwaitResponse(*thread, rpc);
      conn->FreeRpc(rpc);
    }
    if (shared->measuring) {
      shared->ops += 1;
      lat.Record(start);
    }
  }
}

struct CrossoverResult {
  double mops = 0;
  int64_t p50 = 0, p99 = 0;
  double onesided_frac = 0;  // fraction of measured reads served by fl_read
};

struct RunConfig {
  uint64_t keys = 4096;
  int clients = 8;
  int threads = 8;
  // The RPC plane must be server-CPU-bound for the crossover to be about
  // the data plane (the paper's motivation: one-sided reads spend zero
  // server CPU). A few dispatchers against clients*threads workers puts the
  // RPC path at its CPU ceiling while fl_read scales with the NIC.
  int server_cores = 2;
  Nanos warmup = kMillisecond;
  Nanos measure = 2 * kMillisecond;
};

CrossoverResult RunPath(const RunConfig& rc, uint32_t payload, int read_pct,
                        bool onesided) {
  verbs::Cluster cluster(verbs::Cluster::Config{
      .num_nodes = 1 + rc.clients, .cores_per_node = 16});
  kv::KvStore store(cluster.mem(0), rc.keys, payload);
  std::vector<uint8_t> value(payload);
  for (uint64_t k = 0; k < rc.keys; ++k) {
    std::memcpy(value.data(), &k, 8);
    FLOCK_CHECK(store.Insert(k, value.data()));
  }

  FlockConfig config;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(kGetRpc, MakeGetHandler(&store));
  server.RegisterHandler(kPutRpc, MakePutHandler(&store));
  server.StartServer(rc.server_cores);

  Shared shared;
  std::vector<std::unique_ptr<FlockRuntime>> clients;
  std::vector<std::unique_ptr<kv::OneSidedReader>> readers;
  std::vector<std::unique_ptr<std::vector<RemoteMr>>> client_mrs;
  uint64_t seed = 0x9e3779b97f4a7c15ULL ^ (payload * 131 + read_pct);
  uint64_t total_reads = 0;  // denominator for onesided_frac (set below)
  for (int c = 0; c < rc.clients; ++c) {
    clients.push_back(std::make_unique<FlockRuntime>(cluster, 1 + c, config));
    clients.back()->StartClient();
    Connection* conn =
        clients.back()->Connect(server, static_cast<uint32_t>(rc.threads));
    auto mrs = std::make_unique<std::vector<RemoteMr>>();
    if (onesided) {
      for (const auto& span : store.spans()) {
        mrs->push_back(conn->AttachMreg(span.addr, span.length));
      }
    }
    for (int t = 0; t < rc.threads; ++t) {
      kv::OneSidedReader* reader = nullptr;
      if (onesided) {
        readers.push_back(std::make_unique<kv::OneSidedReader>(
            *conn, cluster.mem(1 + c), payload));
        reader = readers.back().get();
        // Pre-warm the address cache (stands in for the RPC address-learning
        // channel, which the worker still exercises on fallbacks); learning
        // all keys during a short warmup would need keys/op-rate more sim
        // time than the measured window itself.
        for (uint64_t k = 0; k < rc.keys; ++k) {
          uint64_t addr = 0;
          FLOCK_CHECK(store.Get(k, nullptr, nullptr, &addr));
          for (const RemoteMr& mr : *mrs) {
            if (addr >= mr.addr && addr + 8 + payload <= mr.addr + mr.length) {
              reader->LearnAddr(k, addr, mr);
              break;
            }
          }
        }
      }
      cluster.sim().Spawn(Worker(&cluster, conn,
                                 clients.back()->CreateThread(t % 14), reader,
                                 mrs.get(), rc.keys, payload, read_pct,
                                 SplitMix64(seed), &shared));
    }
    client_mrs.push_back(std::move(mrs));
  }
  cluster.sim().RunFor(rc.warmup);
  // Reset per-reader stats so onesided_frac reflects the measured window
  // (the warmup is dominated by address-learning fallbacks by design).
  uint64_t warm_ok = 0;
  for (const auto& r : readers) {
    warm_ok += r->stats().ok;
  }
  shared.measuring = true;
  cluster.sim().RunFor(rc.measure);
  shared.measuring = false;

  CrossoverResult result;
  result.mops = static_cast<double>(shared.ops) /
                (static_cast<double>(rc.measure) / 1e9) / 1e6;
  result.p50 = shared.latency.Median();
  result.p99 = shared.latency.P99();
  if (onesided) {
    uint64_t ok = 0;
    for (const auto& r : readers) {
      ok += r->stats().ok;
    }
    total_reads = (ok - warm_ok) + shared.rpc_fallbacks;
    result.onesided_frac =
        total_reads == 0
            ? 0
            : static_cast<double>(ok - warm_ok) / static_cast<double>(total_reads);
  }
  return result;
}

}  // namespace
}  // namespace flock::bench

int main(int argc, char** argv) {
  using namespace flock::bench;
  Flags flags(argc, argv);
  JsonDump json(flags, "onesided_crossover");
  RunConfig rc;
  rc.keys = static_cast<uint64_t>(flags.Int("keys", 4096));
  rc.clients = static_cast<int>(flags.Int("clients", 8));
  rc.threads = static_cast<int>(flags.Int("threads", 8));
  rc.server_cores = static_cast<int>(flags.Int("server_cores", 2));
  rc.warmup = flags.Int("warmup_ms", 1) * flock::kMillisecond;
  rc.measure = flags.Int("measure_ms", 2) * flock::kMillisecond;

  const std::vector<uint32_t> payloads = {8, 64, 256, 1024, 4096};
  const std::vector<int> read_ratios = {50, 90, 100};

  double speedup_64_100 = 0;
  for (int read_pct : read_ratios) {
    std::printf("\n==== Crossover (read ratio = %d%%): %d clients x %d threads ====\n",
                read_pct, rc.clients, rc.threads);
    std::printf("%8s | %9s %8s %8s | %9s %8s %8s %7s | %7s\n", "payload",
                "RPC Mops", "p50(us)", "p99(us)", "1S Mops", "p50(us)", "p99(us)",
                "1S-frac", "speedup");
    int64_t crossover_payload = -1;
    for (uint32_t payload : payloads) {
      const CrossoverResult rpc = RunPath(rc, payload, read_pct, false);
      const CrossoverResult os = RunPath(rc, payload, read_pct, true);
      const double speedup = rpc.mops > 0 ? os.mops / rpc.mops : 0;
      if (speedup >= 1.0) {
        crossover_payload = payload;  // largest payload where one-sided wins
      }
      if (payload == 64 && read_pct == 100) {
        speedup_64_100 = speedup;
      }
      std::printf("%8u | %9.2f %8.1f %8.1f | %9.2f %8.1f %8.1f %6.0f%% | %6.2fx\n",
                  payload, rpc.mops, rpc.p50 / 1e3, rpc.p99 / 1e3, os.mops,
                  os.p50 / 1e3, os.p99 / 1e3, os.onesided_frac * 100, speedup);
      std::printf("CSV,crossover,%u,%d,rpc,%.3f,%ld,%ld\n", payload, read_pct,
                  rpc.mops, static_cast<long>(rpc.p50), static_cast<long>(rpc.p99));
      std::printf("CSV,crossover,%u,%d,onesided,%.3f,%ld,%ld,%.3f\n", payload,
                  read_pct, os.mops, static_cast<long>(os.p50),
                  static_cast<long>(os.p99), os.onesided_frac);
      json.Row({{"payload", payload}, {"read_pct", read_pct}, {"path", "rpc"},
                {"mops", rpc.mops}, {"p50_ns", rpc.p50}, {"p99_ns", rpc.p99}});
      json.Row({{"payload", payload}, {"read_pct", read_pct}, {"path", "onesided"},
                {"mops", os.mops}, {"p50_ns", os.p50}, {"p99_ns", os.p99},
                {"onesided_frac", os.onesided_frac}});
      std::fflush(stdout);
    }
    // The measured crossover: the largest swept payload where the one-sided
    // plane still beats the RPC plane at this read ratio (-1 = never wins).
    std::printf("CSV,crossover_point,%d,%ld\n", read_pct,
                static_cast<long>(crossover_payload));
    json.Row({{"read_pct", read_pct}, {"path", "crossover_point"},
              {"crossover_payload", crossover_payload}});
  }
  std::printf("\n64B/100%%-read one-sided speedup over RPC: %.2fx (gate: >= 1.5x)\n",
              speedup_64_100);
  json.Row({{"path", "gate"}, {"speedup_64b_100r", speedup_64_100}});
  return 0;
}
